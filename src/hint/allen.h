// Allen's interval algebra on HINT (the VLDBJ extension of HINT, "a
// hierarchical interval index for Allen relationships").
//
// Semantics for closed discrete intervals [st, end] (st <= end): the
// standard half-open mapping [st, end + 1) is applied, so MEETS means
// *adjacency* (i.end + 1 == q.st) and the thirteen relations partition the
// space — for any pair of intervals exactly one relation holds:
//   EQUALS        i.st == q.st && i.end == q.end
//   STARTS        i.st == q.st && i.end <  q.end
//   STARTED_BY    i.st == q.st && i.end >  q.end
//   FINISHES      i.end == q.end && i.st >  q.st
//   FINISHED_BY   i.end == q.end && i.st <  q.st
//   MEETS         i.end + 1 == q.st              (adjacent before q)
//   MET_BY        i.st == q.end + 1              (adjacent after q)
//   OVERLAPS      i.st <  q.st && q.st <= i.end && i.end < q.end
//   OVERLAPPED_BY i.st >  q.st && i.st <= q.end && i.end > q.end
//   CONTAINS      i.st <  q.st && i.end >  q.end
//   DURING        i.st >  q.st && i.end <  q.end (contained by q)
//   BEFORE        i.end + 1 < q.st               (gap before q)
//   AFTER         i.st > q.end + 1               (gap after q)
//
// The generalized Overlap predicate of the paper equals the union of all
// relations except MEETS, MET_BY, BEFORE and AFTER.

#ifndef IRHINT_HINT_ALLEN_H_
#define IRHINT_HINT_ALLEN_H_

#include <cstdint>

#include "data/object.h"

namespace irhint {

/// \brief The thirteen basic relations of Allen's interval algebra.
enum class AllenRelation {
  kEquals,
  kStarts,
  kStartedBy,
  kFinishes,
  kFinishedBy,
  kMeets,
  kMetBy,
  kOverlaps,
  kOverlappedBy,
  kContains,
  kDuring,
  kBefore,
  kAfter,
};

/// \brief Display name, e.g. "OVERLAPS".
const char* AllenRelationName(AllenRelation relation);

/// \brief Exact predicate: does data interval i stand in `relation` to q?
inline bool MatchesAllen(AllenRelation relation, const Interval& i,
                         const Interval& q) {
  switch (relation) {
    case AllenRelation::kEquals:
      return i.st == q.st && i.end == q.end;
    case AllenRelation::kStarts:
      return i.st == q.st && i.end < q.end;
    case AllenRelation::kStartedBy:
      return i.st == q.st && i.end > q.end;
    case AllenRelation::kFinishes:
      return i.end == q.end && i.st > q.st;
    case AllenRelation::kFinishedBy:
      return i.end == q.end && i.st < q.st;
    case AllenRelation::kMeets:
      return i.end + 1 == q.st;
    case AllenRelation::kMetBy:
      return q.end != static_cast<Time>(-1) && i.st == q.end + 1;
    case AllenRelation::kOverlaps:
      return i.st < q.st && q.st <= i.end && i.end < q.end;
    case AllenRelation::kOverlappedBy:
      return i.st > q.st && i.st <= q.end && i.end > q.end;
    case AllenRelation::kContains:
      return i.st < q.st && i.end > q.end;
    case AllenRelation::kDuring:
      return i.st > q.st && i.end < q.end;
    case AllenRelation::kBefore:
      return i.end + 1 < q.st;
    case AllenRelation::kAfter:
      return q.end != static_cast<Time>(-1) && i.st > q.end + 1;
  }
  return false;
}

/// \brief The smallest Overlap-style range query whose result set is a
/// superset of the relation's result set; the exact predicate is then
/// applied as a filter. Returns false when the result is provably empty
/// (e.g. BEFORE with q.st == 0).
///
/// Relations other than MEETS / MET_BY / BEFORE / AFTER imply sharing at
/// least one time point with q, so q itself is a valid candidate range;
/// for several relations a much tighter range exists and is used instead:
///   EQUALS / STARTS / STARTED_BY -> the single point q.st
///   FINISHES / FINISHED_BY       -> the single point q.end
///   MEETS  -> the point q.st - 1,  MET_BY -> the point q.end + 1
///   BEFORE -> [0, q.st - 2],       AFTER  -> [q.end + 2, domain_end]
inline bool AllenCandidateRange(AllenRelation relation, const Interval& q,
                                Time domain_end, Interval* range) {
  switch (relation) {
    case AllenRelation::kEquals:
    case AllenRelation::kStarts:
    case AllenRelation::kStartedBy:
      *range = Interval(q.st, q.st);
      return true;
    case AllenRelation::kFinishes:
    case AllenRelation::kFinishedBy:
      *range = Interval(q.end, q.end);
      return true;
    case AllenRelation::kMeets:
      if (q.st == 0) return false;
      *range = Interval(q.st - 1, q.st - 1);
      return true;
    case AllenRelation::kMetBy:
      if (q.end + 1 > domain_end) return false;
      *range = Interval(q.end + 1, q.end + 1);
      return true;
    case AllenRelation::kBefore:
      if (q.st < 2) return false;
      *range = Interval(0, q.st - 2);
      return true;
    case AllenRelation::kAfter:
      if (q.end + 2 > domain_end) return false;
      *range = Interval(q.end + 2, domain_end);
      return true;
    case AllenRelation::kOverlaps:
    case AllenRelation::kOverlappedBy:
    case AllenRelation::kContains:
    case AllenRelation::kDuring:
      *range = q;
      return true;
  }
  return false;
}

}  // namespace irhint

#endif  // IRHINT_HINT_ALLEN_H_

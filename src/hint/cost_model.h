// Cost model for choosing HINT's number of bits m (reconstruction of the
// model sketched in the HINT papers).
//
// Larger m shrinks the bottom-level cells (fewer false candidates, fewer
// comparisons) but inflates replication (an interval's canonical cover
// grows with the hierarchy depth) and adds per-partition visit overhead.
// The model estimates, for every candidate m, the expected number of
// entries scanned by a range query of a given extent plus a per-partition
// probe cost, from the per-level assignment histogram of a corpus sample,
// and picks the minimizing m.
//
// The temporal-IR paper observes (Section 5.2) that this interval-only
// model over-sizes m for the IR-first tIF+HINT variants (which also pay
// list-intersection fragmentation) but works well for the time-first
// irHINT; the Figure 9 bench sweeps m to show the same effect.

#ifndef IRHINT_HINT_COST_MODEL_H_
#define IRHINT_HINT_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "data/object.h"
#include "hint/hint.h"

namespace irhint {

struct CostModelOptions {
  /// Expected query extent as a fraction of the domain (paper default:
  /// 0.1% = 0.001).
  double query_extent_fraction = 0.001;
  /// Relative cost of probing one partition vs scanning one entry.
  double partition_probe_cost = 8.0;
  /// Candidate range of m values.
  int min_bits = 1;
  int max_bits = 20;
  /// Sample size cap; larger inputs are subsampled deterministically.
  size_t max_sample = 100000;
};

/// \brief Estimated query cost (arbitrary units) of a HINT with `m` bits
/// over the given intervals.
double EstimateHintQueryCost(const std::vector<IntervalRecord>& records,
                             Time domain_end, int m,
                             const CostModelOptions& options);

/// \brief Pick the m in [options.min_bits, options.max_bits] minimizing the
/// estimated query cost.
int ChooseHintBits(const std::vector<IntervalRecord>& records,
                   Time domain_end, const CostModelOptions& options = {});

}  // namespace irhint

#endif  // IRHINT_HINT_COST_MODEL_H_

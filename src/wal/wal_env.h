// Filesystem abstraction for the WAL subsystem. Everything the log writer,
// replayer and checkpointer do to disk funnels through a WalEnv so the
// crash-torture harness can substitute a fault-injecting implementation
// (wal/fault_env.h) that kills the writer mid-record or mid-fsync.
//
// The default environment is POSIX: append-only files opened O_APPEND,
// fsync-backed Sync(), directory fsyncs for rename durability.

#ifndef IRHINT_WAL_WAL_ENV_H_
#define IRHINT_WAL_WAL_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace irhint {

class TemporalIrIndex;

/// \brief An append-only file handle. Append() hands bytes to the OS
/// immediately (no user-space buffering), Sync() makes them survive power
/// loss. One record is always handed over in a single Append call, which is
/// the granularity fault injection tears.
class WalWritableFile {
 public:
  virtual ~WalWritableFile() = default;

  virtual Status Append(const void* data, size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// \brief The filesystem operations the WAL subsystem needs. Paths are
/// plain strings; directories are separated with '/'.
class WalEnv {
 public:
  virtual ~WalEnv() = default;

  /// \brief Create or truncate `path` for appending.
  virtual StatusOr<std::unique_ptr<WalWritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// \brief Open an existing `path` for appending, keeping its contents
  /// (sealing a reopened segment); fails if the file does not exist.
  virtual StatusOr<std::unique_ptr<WalWritableFile>> ReopenWritableFile(
      const std::string& path) = 0;

  /// \brief Read the whole file into memory (segments are replay-sized).
  virtual StatusOr<std::string> ReadFileToString(const std::string& path) = 0;

  /// \brief Entry names (not paths) in `dir`, excluding "." and "..".
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual Status CreateDirIfMissing(const std::string& dir) = 0;
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// \brief Shrink `path` to exactly `size` bytes (torn-tail truncation).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// \brief fsync the directory itself so renames/creates/removes survive.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  /// \brief Write a checkpoint snapshot of `index` to `path`, recording the
  /// WAL LSN it covers and the insert-id watermark. The default forwards to
  /// SaveIndexCheckpoint (storage/index_io.h: tmp file + fsync + atomic
  /// rename); the fault-injecting environment can crash in the middle
  /// instead.
  virtual Status WriteIndexSnapshot(const TemporalIrIndex& index,
                                    const std::string& path, uint64_t lsn,
                                    uint64_t next_object_id);
};

/// \brief The process-wide POSIX environment.
WalEnv* DefaultWalEnv();

/// \brief `dir` + "/" + `name` (no-op when dir is empty).
std::string WalPathJoin(const std::string& dir, const std::string& name);

}  // namespace irhint

#endif  // IRHINT_WAL_WAL_ENV_H_

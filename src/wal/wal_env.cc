#include "wal/wal_env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>

#include "storage/index_io.h"

namespace irhint {

Status WalEnv::WriteIndexSnapshot(const TemporalIrIndex& index,
                                  const std::string& path, uint64_t lsn,
                                  uint64_t next_object_id) {
  return SaveIndexCheckpoint(index, path, lsn, next_object_id);
}

std::string WalPathJoin(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

namespace {

Status Errno(const std::string& what, const std::string& path) {
  // std::generic_category().message() instead of strerror(): same text,
  // but thread-safe (strerror's static buffer is a concurrency-mt-unsafe
  // clang-tidy hit).
  return Status::IoError(what + " " + path + ": " +
                         std::generic_category().message(errno));
}

class PosixWritableFile : public WalWritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t written = ::write(fd_, p, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += written;
      n -= static_cast<size_t>(written);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return Errno("close", path_);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixWalEnv : public WalEnv {
 public:
  StatusOr<std::unique_ptr<WalWritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WalWritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  StatusOr<std::unique_ptr<WalWritableFile>> ReopenWritableFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WalWritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  StatusOr<std::string> ReadFileToString(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open", path);
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Errno("read", path);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return Errno("opendir", dir);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDirIfMissing(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return Errno("mkdir", dir);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename", from);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open dir", dir);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("fsync dir", dir);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    return static_cast<uint64_t>(st.st_size);
  }
};

}  // namespace

WalEnv* DefaultWalEnv() {
  static PosixWalEnv* env = new PosixWalEnv();
  return env;
}

}  // namespace irhint

// Crash recovery: rebuild a live index from a WAL directory — newest
// loadable checkpoint snapshot plus replay of every later record — and
// leave the directory in a state the writer can append to again.
//
// Guarantees (tested by tests/crash_torture_test.cc):
//   * every record the writer acknowledged as synced is recovered;
//   * the recovered state equals a reference replay of the exact LSN
//     prefix the log retained;
//   * a torn tail (crash mid-record / mid-fsync / out-of-order page
//     writeback) is truncated away; corruption in a sealed segment — or a
//     checkpoint snapshot that no longer loads while its records were
//     already garbage-collected — fails with a clean Status instead of
//     silently losing acknowledged data.

#ifndef IRHINT_WAL_RECOVERY_H_
#define IRHINT_WAL_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/factory.h"
#include "core/index_kind.h"
#include "core/temporal_ir_index.h"
#include "storage/snapshot_reader.h"
#include "wal/wal_env.h"

namespace irhint {

struct RecoveryOptions {
  /// Index kind to instantiate when the directory holds no snapshot (a
  /// fresh log, or one that never checkpointed). An existing snapshot's
  /// recorded kind always wins.
  IndexKind kind = IndexKind::kIrHintPerf;
  IndexConfig config;
  /// Passed to snapshot loads (mmap on/off etc.).
  SnapshotReadOptions snapshot_read;
  /// Physically truncate a tolerated torn tail so the segment parses to
  /// EOF on the next recovery (required before appending resumes).
  bool truncate_torn_tail = true;
};

struct RecoveryResult {
  /// The recovered index, never null on success.
  std::unique_ptr<TemporalIrIndex> index;
  IndexKind kind = IndexKind::kIrHintPerf;
  /// Highest LSN reflected in the recovered state (snapshot or replay);
  /// 0 for a fresh directory.
  uint64_t last_lsn = 0;
  /// Segment sequence number the writer should open next.
  uint64_t next_segment_seq = 1;
  /// Final segment still on disk after recovery (0 = none), and whether it
  /// already ends with a rotate handoff. A reopened-but-never-rotated live
  /// segment is unsealed; DurableIndex::Open seals it (SealWalSegment)
  /// before the writer opens next_segment_seq, consuming one LSN.
  uint64_t live_segment_seq = 0;
  bool live_segment_sealed = false;
  /// Checkpoint snapshot the recovery started from ("" = none, full
  /// replay).
  std::string snapshot_file;
  uint64_t snapshot_lsn = 0;
  /// Smallest id the next insert may use (the strictly-increasing-id
  /// contract; from the snapshot's watermark and the replayed records).
  uint64_t next_object_id = 0;
  /// Insert/erase records applied during replay.
  uint64_t records_replayed = 0;
  /// Replayed updates whose apply failed. The inner indexes are
  /// deterministic and replay reconstructs the exact state each record was
  /// logged against, so such a record failed identically when first logged
  /// (e.g. a duplicate insert) — skipped, not an error.
  uint64_t records_skipped = 0;
  /// Bytes dropped from a torn final segment (0 = clean shutdown).
  uint64_t torn_bytes_dropped = 0;
  /// Checkpoint snapshots that failed to load and were passed over for an
  /// older one (bit rot tolerated when the records still exist).
  uint64_t snapshots_rejected = 0;
};

/// \brief Scans `dir` and performs recovery. The directory may be empty or
/// missing (fresh log). On success the final segment is clean (torn tail
/// truncated) and `result.index` answers queries.
class RecoveryManager {
 public:
  RecoveryManager(WalEnv* env, std::string dir)
      : env_(env), dir_(std::move(dir)) {}

  StatusOr<RecoveryResult> Recover(const RecoveryOptions& options = {});

 private:
  WalEnv* env_;
  std::string dir_;
};

/// \brief Convenience: list the checkpoint snapshot LSNs present in `dir`,
/// newest first (used by recovery, GC and wal_inspect).
StatusOr<std::vector<uint64_t>> ListCheckpointLsns(WalEnv* env,
                                                   const std::string& dir);

/// \brief List the WAL segment sequence numbers in `dir`, oldest first.
StatusOr<std::vector<uint64_t>> ListWalSegments(WalEnv* env,
                                                const std::string& dir);

}  // namespace irhint

#endif  // IRHINT_WAL_RECOVERY_H_

// The on-disk write-ahead-log format.
//
// A WAL directory holds numbered segment files plus checkpoint snapshots:
//
//   wal-<seq>.log         segment files, seq is a zero-padded decimal and
//                         strictly increases; records never move between
//                         segments
//   ckpt-<lsn>.snap       index snapshots written by checkpointing (the
//                         PR 2 snapshot format plus a kSectionWalState
//                         section recording the checkpoint LSN)
//
// Segment layout (all integers little-endian, fixed width):
//
//   +0   Segment header (32 bytes)
//        magic     u64   "IRHWAL01"
//        version   u32   kWalFormatVersion
//        reserved  u32   0
//        seq       u64   the segment's own sequence number (catches
//                        renamed/misplaced files)
//        crc       u32   CRC32C of the 24 bytes above
//        pad       u32   0
//   +32  Records, each starting at an 8-byte-aligned offset:
//        crc       u32   CRC32C of bytes [4, 24 + payload_size)
//        size      u32   payload bytes (excluding header and padding)
//        lsn       u64   strictly increasing across the whole log
//        type      u32   WalRecordType
//        reserved  u32   0
//        payload   size bytes, then zero padding to the next 8-byte
//                  boundary
//
// Record payloads:
//   kInsert/kErase   id u32, element_count u32, t_st u64, t_end u64,
//                    elements u32 * element_count
//   kCheckpoint      checkpoint_lsn u64, name_len u32 + snapshot file name
//                    (relative to the WAL directory)
//   kRotate          next_seq u64 (the segment that continues the log);
//                    always the final record of a cleanly rotated segment
//
// Torn-tail rule (crash tolerance): any decode failure in the FINAL (live)
// segment ends the log there — a crash can tear it mid-record or
// mid-fsync, and out-of-order page writeback can corrupt an unsynced
// record while later ones survive, so even a valid record after the
// damage proves nothing. Recovery physically truncates the tail (and
// deletes a final segment torn inside its own header, reusing its
// sequence number — a truncated stub could never parse again). A decode
// failure in a NON-final segment is mid-log corruption and fails recovery
// with a clean Status: sealed segments were fully fsynced by the rotate
// handoff, so damage there cannot be a crash artifact.

#ifndef IRHINT_WAL_WAL_FORMAT_H_
#define IRHINT_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/object.h"

namespace irhint {

inline constexpr uint64_t kWalMagic = 0x31304C4157485249ULL;  // "IRHWAL01"
inline constexpr uint32_t kWalFormatVersion = 1;

inline constexpr size_t kWalSegmentHeaderBytes = 32;
inline constexpr size_t kWalRecordHeaderBytes = 24;

/// \brief Record types. Stable on-disk tags; never renumber.
enum class WalRecordType : uint32_t {
  kInsert = 1,
  kErase = 2,
  kCheckpoint = 3,
  kRotate = 4,
};

/// \brief Human-readable name of a record type tag ("?" if unknown).
std::string_view WalRecordTypeName(uint32_t type);

/// \brief One decoded WAL record. Only the fields of its type are set.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  /// kInsert / kErase: the logged object.
  Object object;
  /// kCheckpoint: LSN covered by the snapshot and its file name.
  uint64_t checkpoint_lsn = 0;
  std::string snapshot_file;
  /// kRotate: sequence number of the segment that continues the log.
  uint64_t next_seq = 0;
};

/// \brief File name of segment `seq`, e.g. "wal-00000000000000000007.log".
std::string WalSegmentFileName(uint64_t seq);

/// \brief File name of the checkpoint snapshot covering `lsn`.
std::string CheckpointFileName(uint64_t lsn);

/// \brief Parse a segment file name; returns false if `name` is not one.
[[nodiscard]] bool ParseWalSegmentFileName(std::string_view name,
                                           uint64_t* seq);

/// \brief Parse a checkpoint snapshot file name.
[[nodiscard]] bool ParseCheckpointFileName(std::string_view name,
                                           uint64_t* lsn);

/// \brief Bytes a record with `payload_size` payload occupies on disk
/// (header + payload + padding to 8).
inline size_t WalRecordBytesOnDisk(size_t payload_size) {
  return (kWalRecordHeaderBytes + payload_size + 7) & ~size_t{7};
}

/// \brief Payload bytes of an insert/erase record for `object`.
inline size_t WalObjectPayloadBytes(const Object& object) {
  return 8 + 16 + object.elements.size() * sizeof(ElementId);
}

/// \brief Frame one record exactly as it sits on disk: CRC-covered header,
/// payload, zero padding to the 8-byte boundary. Shared by the writer's
/// append path and the reopen-seal path in DurableIndex::Open.
std::vector<uint8_t> EncodeWalRecord(WalRecordType type, uint64_t lsn,
                                     const void* payload,
                                     size_t payload_size);

}  // namespace irhint

#endif  // IRHINT_WAL_WAL_FORMAT_H_

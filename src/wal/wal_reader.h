// Decodes WAL segments. A segment parses into its records plus a tail
// verdict: `clean` (every byte decoded), or the offset where decoding
// stopped and whether any valid record exists past that point — the fact
// the torn-tail rule needs to tell a crash tail from mid-log corruption.

#ifndef IRHINT_WAL_WAL_READER_H_
#define IRHINT_WAL_WAL_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"
#include "wal/wal_env.h"
#include "wal/wal_format.h"

namespace irhint {

/// \brief Everything decoded from one segment file.
struct WalSegmentContents {
  /// Sequence number from the (validated) segment header.
  uint64_t seq = 0;
  /// Records in file order, up to the first undecodable byte.
  std::vector<WalRecord> records;
  /// File size that decoded cleanly; equals the file size iff `clean`.
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  /// True when the whole file decoded.
  bool clean = false;
  /// Why decoding stopped when !clean (truncated header, bad CRC, ...).
  Status tail_status;
  /// !clean only: a CRC-valid record exists past the stop point.
  /// Diagnostic (surfaced by wal_inspect): in a live segment this is still
  /// a tolerable crash state — out-of-order writeback can corrupt an
  /// unsynced record while later ones survive — so recovery truncates at
  /// the first failure regardless.
  bool valid_record_after_tail = false;
  /// True when the last decoded record is a rotate marker (clean handoff
  /// to the next segment).
  bool ends_with_rotate = false;
};

/// \brief Read and decode one segment. Fails outright only when the file
/// is unreadable or its header names a different sequence number than its
/// file name (misplaced file); header corruption is reported through the
/// tail fields like any other undecodable byte range, so the caller can
/// apply the torn-tail policy uniformly.
IRHINT_UNTRUSTED StatusOr<WalSegmentContents> ReadWalSegment(
    WalEnv* env, const std::string& path);

/// \brief Decode one record at `data + offset` (bounds-checked against
/// `size`). Used by ReadWalSegment and the mid-log corruption probe.
IRHINT_UNTRUSTED Status DecodeWalRecord(const uint8_t* data, size_t size,
                                        size_t offset, WalRecord* out,
                                        size_t* bytes_consumed);

}  // namespace irhint

#endif  // IRHINT_WAL_WAL_READER_H_

#include "wal/wal_format.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "storage/crc32c.h"

namespace irhint {

std::string_view WalRecordTypeName(uint32_t type) {
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kInsert: return "insert";
    case WalRecordType::kErase: return "erase";
    case WalRecordType::kCheckpoint: return "checkpoint";
    case WalRecordType::kRotate: return "rotate";
  }
  return "?";
}

std::string WalSegmentFileName(uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", seq);
  return buf;
}

std::string CheckpointFileName(uint64_t lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ckpt-%020" PRIu64 ".snap", lsn);
  return buf;
}

namespace {

bool ParseNumberedName(std::string_view name, std::string_view prefix,
                       std::string_view suffix, uint64_t* value) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.substr(0, prefix.size()) != prefix) return false;
  if (name.substr(prefix.size() + 20) != suffix) return false;
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

}  // namespace

bool ParseWalSegmentFileName(std::string_view name, uint64_t* seq) {
  return ParseNumberedName(name, "wal-", ".log", seq);
}

bool ParseCheckpointFileName(std::string_view name, uint64_t* lsn) {
  return ParseNumberedName(name, "ckpt-", ".snap", lsn);
}

std::vector<uint8_t> EncodeWalRecord(WalRecordType type, uint64_t lsn,
                                     const void* payload,
                                     size_t payload_size) {
  std::vector<uint8_t> buf(WalRecordBytesOnDisk(payload_size), 0);
  uint32_t size32 = static_cast<uint32_t>(payload_size);
  uint32_t type32 = static_cast<uint32_t>(type);
  std::memcpy(buf.data() + 4, &size32, 4);
  std::memcpy(buf.data() + 8, &lsn, 8);
  std::memcpy(buf.data() + 16, &type32, 4);
  if (payload_size > 0) {
    std::memcpy(buf.data() + kWalRecordHeaderBytes, payload, payload_size);
  }
  const uint32_t crc =
      Crc32c(buf.data() + 4, kWalRecordHeaderBytes - 4 + payload_size);
  std::memcpy(buf.data(), &crc, 4);
  return buf;
}

}  // namespace irhint

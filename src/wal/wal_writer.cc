#include "wal/wal_writer.h"

#include <cstring>
#include <vector>

#include "storage/crc32c.h"

namespace irhint {

namespace {

void PutU32(uint8_t* out, uint32_t v) { std::memcpy(out, &v, 4); }
void PutU64(uint8_t* out, uint64_t v) { std::memcpy(out, &v, 8); }

}  // namespace

StatusOr<WalDurability> ParseWalDurability(std::string_view name) {
  if (name == "none") return WalDurability::kNone;
  if (name == "batch") return WalDurability::kBatch;
  if (name == "always") return WalDurability::kAlways;
  return Status::InvalidArgument("unknown durability policy \"" +
                                 std::string(name) +
                                 "\" (want none|batch|always)");
}

std::string_view WalDurabilityName(WalDurability durability) {
  switch (durability) {
    case WalDurability::kNone: return "none";
    case WalDurability::kBatch: return "batch";
    case WalDurability::kAlways: return "always";
  }
  return "?";
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    WalEnv* env, const std::string& dir, uint64_t seq, uint64_t next_lsn,
    const WalWriterOptions& options) {
  std::unique_ptr<WalWriter> writer(new WalWriter(env, dir, options));
  writer->next_lsn_ = next_lsn;
  IRHINT_RETURN_NOT_OK(writer->OpenSegment(seq));
  return writer;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    // Best effort: push buffered bytes out, but a poisoned writer (e.g.
    // after an injected crash) must not touch the environment again.
    if (status_.ok()) (void)MaybeSync(/*force=*/true);
    (void)file_->Close();
  }
}

std::string WalWriter::segment_path() const {
  return WalPathJoin(dir_, WalSegmentFileName(seq_));
}

Status WalWriter::OpenSegment(uint64_t seq) {
  seq_ = seq;
  auto file = env_->NewWritableFile(segment_path());
  if (!file.ok()) {
    status_ = file.status();
    return status_;
  }
  file_ = std::move(file).value();

  uint8_t header[kWalSegmentHeaderBytes];
  std::memset(header, 0, sizeof(header));
  PutU64(header + 0, kWalMagic);
  PutU32(header + 8, kWalFormatVersion);
  PutU64(header + 16, seq);
  PutU32(header + 24, Crc32c(header, 24));
  if (Status st = file_->Append(header, sizeof(header)); !st.ok()) {
    status_ = st;
    return status_;
  }
  segment_bytes_ = sizeof(header);
  unsynced_bytes_ = sizeof(header);
  // Make the new segment itself durable before accepting records: its name
  // must survive the crash that its records are supposed to survive.
  if (options_.durability != WalDurability::kNone) {
    if (Status st = file_->Sync(); !st.ok()) {
      status_ = st;
      return status_;
    }
    if (Status st = env_->SyncDir(dir_); !st.ok()) {
      status_ = st;
      return status_;
    }
    unsynced_bytes_ = 0;
  }
  return Status::OK();
}

StatusOr<uint64_t> WalWriter::AppendRecord(WalRecordType type,
                                           const void* payload,
                                           size_t payload_size) {
  IRHINT_RETURN_NOT_OK(status_);
  const uint64_t lsn = next_lsn_;
  const std::vector<uint8_t> buf =
      EncodeWalRecord(type, lsn, payload, payload_size);
  const size_t total = buf.size();
  if (Status st = file_->Append(buf.data(), buf.size()); !st.ok()) {
    status_ = st;
    return status_;
  }
  next_lsn_ = lsn + 1;
  last_appended_lsn_ = lsn;
  segment_bytes_ += total;
  unsynced_bytes_ += total;
  IRHINT_RETURN_NOT_OK(
      MaybeSync(/*force=*/options_.durability == WalDurability::kAlways));
  return lsn;
}

StatusOr<uint64_t> WalWriter::AppendObjectRecord(WalRecordType type,
                                                 const Object& object) {
  std::vector<uint8_t> payload(WalObjectPayloadBytes(object), 0);
  PutU32(payload.data() + 0, object.id);
  PutU32(payload.data() + 4,
         static_cast<uint32_t>(object.elements.size()));
  PutU64(payload.data() + 8, object.interval.st);
  PutU64(payload.data() + 16, object.interval.end);
  if (!object.elements.empty()) {
    std::memcpy(payload.data() + 24, object.elements.data(),
                object.elements.size() * sizeof(ElementId));
  }
  return AppendRecord(type, payload.data(), payload.size());
}

StatusOr<uint64_t> WalWriter::AppendInsert(const Object& object) {
  return AppendObjectRecord(WalRecordType::kInsert, object);
}

StatusOr<uint64_t> WalWriter::AppendErase(const Object& object) {
  return AppendObjectRecord(WalRecordType::kErase, object);
}

StatusOr<uint64_t> WalWriter::AppendCheckpoint(uint64_t checkpoint_lsn,
                                               std::string_view file) {
  std::vector<uint8_t> payload(12 + file.size(), 0);
  PutU64(payload.data() + 0, checkpoint_lsn);
  PutU32(payload.data() + 8, static_cast<uint32_t>(file.size()));
  std::memcpy(payload.data() + 12, file.data(), file.size());
  auto lsn = AppendRecord(WalRecordType::kCheckpoint, payload.data(),
                          payload.size());
  IRHINT_RETURN_NOT_OK(lsn.status());
  IRHINT_RETURN_NOT_OK(MaybeSync(/*force=*/true));
  return lsn;
}

Status WalWriter::Rotate() {
  IRHINT_RETURN_NOT_OK(status_);
  const uint64_t next_seq = seq_ + 1;
  uint8_t payload[8];
  PutU64(payload, next_seq);
  IRHINT_RETURN_NOT_OK(
      AppendRecord(WalRecordType::kRotate, payload, sizeof(payload))
          .status());
  IRHINT_RETURN_NOT_OK(MaybeSync(/*force=*/true));
  if (Status st = file_->Close(); !st.ok()) {
    status_ = st;
    return status_;
  }
  file_ = nullptr;
  return OpenSegment(next_seq);
}

Status WalWriter::Sync() { return MaybeSync(/*force=*/true); }

Status SealWalSegment(WalEnv* env, const std::string& dir, uint64_t seq,
                      uint64_t lsn, uint64_t next_seq) {
  const std::string path = WalPathJoin(dir, WalSegmentFileName(seq));
  auto file = env->ReopenWritableFile(path);
  IRHINT_RETURN_NOT_OK(file.status());
  uint8_t payload[8];
  PutU64(payload, next_seq);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kRotate, lsn, payload, sizeof(payload));
  IRHINT_RETURN_NOT_OK((*file)->Append(record.data(), record.size()));
  // The rotate handoff promises the whole segment durable before the next
  // segment opens, exactly like WalWriter::Rotate.
  IRHINT_RETURN_NOT_OK((*file)->Sync());
  return (*file)->Close();
}

Status WalWriter::MaybeSync(bool force) {
  IRHINT_RETURN_NOT_OK(status_);
  if (unsynced_bytes_ == 0) return Status::OK();
  if (!force) {
    if (options_.durability != WalDurability::kBatch) return Status::OK();
    const double since_sync =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_sync_time_)
            .count();
    if (unsynced_bytes_ < options_.batch_bytes &&
        since_sync < options_.batch_interval_seconds) {
      return Status::OK();
    }
  }
  // An explicit Sync() (force) is honored even under kNone; the policy
  // only decides when syncs happen automatically.
  if (Status st = file_->Sync(); !st.ok()) {
    status_ = st;
    return status_;
  }
  unsynced_bytes_ = 0;
  last_synced_lsn_ = last_appended_lsn_;
  last_sync_time_ = std::chrono::steady_clock::now();
  return Status::OK();
}

}  // namespace irhint

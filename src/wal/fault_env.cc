#include "wal/fault_env.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace irhint {

/// Write-through file that reports appends/syncs back to the env so it can
/// model what survives a crash. Named (not in the anonymous namespace) so
/// the env's friend declaration matches it.
class FaultInjectingFile : public WalWritableFile {
 public:
  FaultInjectingFile(FaultInjectingWalEnv* env, std::string path,
                     std::unique_ptr<WalWritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingWalEnv* env_;
  std::string path_;
  std::unique_ptr<WalWritableFile> base_;
};

namespace {

Status FlipOneBit(const std::string& path, uint64_t offset, uint32_t bit) {
  // Direct FILE* surgery on the materialized file; this runs after the
  // simulated crash, outside any env, so bypassing WalEnv is fine.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return Status::IoError("cannot reopen " + path);
  unsigned char byte = 0;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("cannot read flip target in " + path);
  }
  byte = static_cast<unsigned char>(byte ^ (1u << (bit % 8)));
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return Status::IoError("cannot write flip target in " + path);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace

Status FaultInjectingFile::Append(const void* data, size_t n) {
  auto& state = env_->files_[path_];
  if (env_->CountOp()) {
    // Torn write: a random prefix of this record reaches the page cache
    // before the lights go out.
    const size_t torn = n == 0 ? 0 : env_->rng_() % (n + 1);
    if (torn > 0) {
      const Status st = base_->Append(data, torn);
      if (st.ok()) state.appended_len += torn;
    }
    return FaultInjectingWalEnv::CrashedStatus();
  }
  IRHINT_RETURN_NOT_OK(base_->Append(data, n));
  state.appended_len += n;
  return Status::OK();
}

Status FaultInjectingFile::Sync() {
  auto& state = env_->files_[path_];
  if (env_->CountOp()) {
    // Crash mid-fsync: nothing new is promised durable.
    return FaultInjectingWalEnv::CrashedStatus();
  }
  IRHINT_RETURN_NOT_OK(base_->Sync());
  state.synced_len = state.appended_len;
  return Status::OK();
}

void FaultInjectingWalEnv::ArmCrash(uint64_t ops_from_now, uint64_t seed) {
  crash_at_op_ = ops_ + ops_from_now;
  crashed_ = false;
  rng_.seed(seed);
}

bool FaultInjectingWalEnv::CountOp() {
  if (crashed_) return true;
  ++ops_;
  if (crash_at_op_ != 0 && ops_ >= crash_at_op_) crashed_ = true;
  return crashed_;
}

Status FaultInjectingWalEnv::MaterializeCrashState(std::mt19937_64* rng,
                                                   bool flip_bits) {
  for (const auto& [path, state] : files_) {
    if (!base_->FileExists(path)) continue;
    auto size = base_->FileSize(path);
    IRHINT_RETURN_NOT_OK(size.status());
    // appended_len is what our writer handed over; the actual file can be
    // no larger (O_APPEND), but clamp defensively.
    const uint64_t appended = std::min<uint64_t>(state.appended_len, *size);
    const uint64_t synced = std::min<uint64_t>(state.synced_len, appended);
    const uint64_t survive =
        synced + (*rng)() % (appended - synced + 1);  // in [synced, appended]
    if (survive < *size) {
      IRHINT_RETURN_NOT_OK(base_->TruncateFile(path, survive));
    }
    // A flipped bit models a torn sector; only the unsynced tail may be
    // damaged — synced bytes are durable by contract.
    if (flip_bits && survive > synced) {
      const uint64_t offset = synced + (*rng)() % (survive - synced);
      IRHINT_RETURN_NOT_OK(
          FlipOneBit(path, offset, static_cast<uint32_t>((*rng)() % 8)));
    }
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<WalWritableFile>>
FaultInjectingWalEnv::NewWritableFile(const std::string& path) {
  if (CountOp()) return CrashedStatus();
  auto base = base_->NewWritableFile(path);
  IRHINT_RETURN_NOT_OK(base.status());
  files_[path] = FileState{};  // truncated: nothing appended or synced yet
  return std::unique_ptr<WalWritableFile>(
      new FaultInjectingFile(this, path, std::move(base).value()));
}

StatusOr<std::unique_ptr<WalWritableFile>>
FaultInjectingWalEnv::ReopenWritableFile(const std::string& path) {
  if (CountOp()) return CrashedStatus();
  auto base = base_->ReopenWritableFile(path);
  IRHINT_RETURN_NOT_OK(base.status());
  // Pre-existing bytes are durable by contract: recovery already truncated
  // any torn tail, and a crash during this incarnation only tears what is
  // appended through this handle.
  auto size = base_->FileSize(path);
  IRHINT_RETURN_NOT_OK(size.status());
  files_[path] = FileState{/*synced_len=*/*size, /*appended_len=*/*size};
  return std::unique_ptr<WalWritableFile>(
      new FaultInjectingFile(this, path, std::move(base).value()));
}

StatusOr<std::string> FaultInjectingWalEnv::ReadFileToString(
    const std::string& path) {
  if (crashed_) return CrashedStatus();
  return base_->ReadFileToString(path);
}

StatusOr<std::vector<std::string>> FaultInjectingWalEnv::ListDir(
    const std::string& dir) {
  if (crashed_) return CrashedStatus();
  return base_->ListDir(dir);
}

Status FaultInjectingWalEnv::CreateDirIfMissing(const std::string& dir) {
  if (crashed_) return CrashedStatus();
  return base_->CreateDirIfMissing(dir);
}

Status FaultInjectingWalEnv::RenameFile(const std::string& from,
                                        const std::string& to) {
  if (CountOp()) return CrashedStatus();
  IRHINT_RETURN_NOT_OK(base_->RenameFile(from, to));
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  }
  return Status::OK();
}

Status FaultInjectingWalEnv::DeleteFile(const std::string& path) {
  if (CountOp()) return CrashedStatus();
  IRHINT_RETURN_NOT_OK(base_->DeleteFile(path));
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectingWalEnv::TruncateFile(const std::string& path,
                                          uint64_t size) {
  if (CountOp()) return CrashedStatus();
  IRHINT_RETURN_NOT_OK(base_->TruncateFile(path, size));
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.appended_len = std::min(it->second.appended_len, size);
    it->second.synced_len = std::min(it->second.synced_len, size);
  }
  return Status::OK();
}

Status FaultInjectingWalEnv::SyncDir(const std::string& dir) {
  if (CountOp()) return CrashedStatus();
  return base_->SyncDir(dir);
}

bool FaultInjectingWalEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

StatusOr<uint64_t> FaultInjectingWalEnv::FileSize(const std::string& path) {
  if (crashed_) return CrashedStatus();
  return base_->FileSize(path);
}

Status FaultInjectingWalEnv::WriteIndexSnapshot(const TemporalIrIndex& index,
                                                const std::string& path,
                                                uint64_t lsn,
                                                uint64_t next_object_id) {
  if (CountOp()) {
    // Crash mid-checkpoint. The real save path is tmp + atomic rename, so
    // a true crash leaves no file at `path`; model the harsher failure of
    // a non-atomic filesystem by leaving garbage there, which recovery
    // must reject and fall back past.
    auto file = base_->NewWritableFile(path);
    if (file.ok()) {
      static const char kGarbage[] = "torn checkpoint snapshot";
      (void)(*file)->Append(kGarbage, sizeof(kGarbage));
      (void)(*file)->Close();
    }
    return CrashedStatus();
  }
  return base_->WriteIndexSnapshot(index, path, lsn, next_object_id);
}

}  // namespace irhint

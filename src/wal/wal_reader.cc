#include "wal/wal_reader.h"

#include <cstring>

#include "common/checked_math.h"
#include "storage/crc32c.h"

namespace irhint {

namespace {

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

IRHINT_UNTRUSTED Status DecodeObjectPayload(const uint8_t* payload,
                                            size_t size, Object* out) {
  if (size < 24) return Status::Corruption("wal object payload truncated");
  out->id = GetU32(payload + 0);
  const uint32_t count = GetU32(payload + 4);
  out->interval.st = GetU64(payload + 8);
  out->interval.end = GetU64(payload + 16);
  if (out->interval.st > out->interval.end) {
    return Status::Corruption("wal object interval inverted");
  }
  // count is attacker-controlled; the byte-count multiply must not wrap
  // before it is compared against the record's actual payload span.
  size_t elem_bytes = 0;
  if (!CheckedMul(static_cast<size_t>(count), sizeof(ElementId),
                  &elem_bytes) ||
      elem_bytes != size - 24) {
    return Status::Corruption("wal object element count mismatch");
  }
  out->elements.resize(count);
  if (count > 0) {
    std::memcpy(out->elements.data(), payload + 24, elem_bytes);
  }
  for (ElementId e : out->elements) {
    // Replay grows dense per-element tables out to the largest id, so an
    // unbounded id in a CRC-valid record is an allocation bomb.
    if (e >= kElementIdLimit) {
      return Status::Corruption("wal object element id out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Status DecodeWalRecord(const uint8_t* data, size_t size, size_t offset,
                       WalRecord* out, size_t* bytes_consumed) {
  if (offset + kWalRecordHeaderBytes > size) {
    return Status::Corruption("wal record header truncated");
  }
  const uint8_t* h = data + offset;
  const uint32_t stored_crc = GetU32(h + 0);
  const uint32_t payload_size = GetU32(h + 4);
  const uint64_t lsn = GetU64(h + 8);
  const uint32_t type = GetU32(h + 16);
  // payload_size is attacker-controlled: the on-disk footprint and its
  // end offset must be computed overflow-checked before trusting either.
  const size_t total = WalRecordBytesOnDisk(payload_size);
  size_t record_end = 0;
  if (total < payload_size ||
      !CheckedAdd(offset, total, &record_end) || record_end > size) {
    return Status::Corruption("wal record payload truncated");
  }
  if (Crc32c(h + 4, kWalRecordHeaderBytes - 4 + payload_size) != stored_crc) {
    return Status::Corruption("wal record checksum mismatch");
  }
  const uint8_t* payload = h + kWalRecordHeaderBytes;
  out->lsn = lsn;
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kInsert:
    case WalRecordType::kErase:
      out->type = static_cast<WalRecordType>(type);
      IRHINT_RETURN_NOT_OK(DecodeObjectPayload(payload, payload_size,
                                               &out->object));
      break;
    case WalRecordType::kCheckpoint: {
      out->type = WalRecordType::kCheckpoint;
      if (payload_size < 12) {
        return Status::Corruption("wal checkpoint payload truncated");
      }
      out->checkpoint_lsn = GetU64(payload + 0);
      const uint32_t name_len = GetU32(payload + 8);
      if (12 + static_cast<size_t>(name_len) != payload_size) {
        return Status::Corruption("wal checkpoint name length mismatch");
      }
      out->snapshot_file.assign(
          reinterpret_cast<const char*>(payload + 12), name_len);
      break;
    }
    case WalRecordType::kRotate:
      out->type = WalRecordType::kRotate;
      if (payload_size != 8) {
        return Status::Corruption("wal rotate payload malformed");
      }
      out->next_seq = GetU64(payload);
      break;
    default:
      return Status::Corruption("wal record has unknown type tag");
  }
  *bytes_consumed = total;
  return Status::OK();
}

StatusOr<WalSegmentContents> ReadWalSegment(WalEnv* env,
                                            const std::string& path) {
  auto bytes = env->ReadFileToString(path);
  IRHINT_RETURN_NOT_OK(bytes.status());
  const uint8_t* data = reinterpret_cast<const uint8_t*>(bytes->data());
  const size_t size = bytes->size();

  WalSegmentContents contents;
  contents.file_bytes = size;

  // Header. A damaged header is reported through the tail fields (offset
  // 0) so the caller's torn-tail policy covers "crash before the header
  // hit disk" — but a *valid* header with the wrong sequence number is a
  // misplaced file, which no crash produces.
  if (size < kWalSegmentHeaderBytes ||
      GetU64(data) != kWalMagic ||
      Crc32c(data, 24) != GetU32(data + 24)) {
    contents.clean = false;
    contents.valid_bytes = 0;
    contents.tail_status = Status::Corruption("wal segment header damaged");
    return contents;
  }
  const uint32_t version = GetU32(data + 8);
  if (version > kWalFormatVersion) {
    return Status::NotSupported("wal segment has future format version");
  }
  contents.seq = GetU64(data + 16);
  uint64_t name_seq = 0;
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (ParseWalSegmentFileName(name, &name_seq) && name_seq != contents.seq) {
    return Status::Corruption("wal segment " + path +
                              " header names sequence " +
                              std::to_string(contents.seq));
  }

  size_t offset = kWalSegmentHeaderBytes;
  uint64_t prev_lsn = 0;
  while (offset < size) {
    WalRecord record;
    size_t consumed = 0;
    Status st = DecodeWalRecord(data, size, offset, &record, &consumed);
    if (st.ok() && !contents.records.empty() && record.lsn <= prev_lsn) {
      st = Status::Corruption("wal record LSN not increasing");
    }
    if (!st.ok()) {
      contents.clean = false;
      contents.valid_bytes = offset;
      contents.tail_status = std::move(st);
      // Probe the rest of the file: any CRC-valid record past the failure
      // point proves this is not a torn (prefix-truncated) tail.
      for (size_t probe = offset + 8; probe < size; probe += 8) {
        WalRecord ignored;
        size_t ignored_bytes = 0;
        if (DecodeWalRecord(data, size, probe, &ignored, &ignored_bytes)
                .ok()) {
          contents.valid_record_after_tail = true;
          break;
        }
      }
      return contents;
    }
    prev_lsn = record.lsn;
    contents.ends_with_rotate = record.type == WalRecordType::kRotate;
    contents.records.push_back(std::move(record));
    offset += consumed;
  }
  contents.clean = true;
  contents.valid_bytes = size;
  return contents;
}

}  // namespace irhint

// Appends CRC-framed records to the live WAL segment with a configurable
// durability policy. Every record is handed to the environment in one
// Append call (the torn-write granularity) and assigned the next monotonic
// LSN; group commit batches fsyncs by bytes and by time.

#ifndef IRHINT_WAL_WAL_WRITER_H_
#define IRHINT_WAL_WAL_WRITER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/object.h"
#include "wal/wal_env.h"
#include "wal/wal_format.h"

namespace irhint {

/// \brief When appended records are fsynced.
enum class WalDurability {
  /// Never fsync; the OS flushes when it pleases. Fastest, weakest.
  kNone,
  /// Group commit: fsync once `batch_bytes` are unsynced or
  /// `batch_interval_seconds` elapsed since the last sync.
  kBatch,
  /// fsync after every record. Strongest, slowest.
  kAlways,
};

/// \brief Parse "none" / "batch" / "always" (CLI flag values).
StatusOr<WalDurability> ParseWalDurability(std::string_view name);
std::string_view WalDurabilityName(WalDurability durability);

struct WalWriterOptions {
  WalDurability durability = WalDurability::kBatch;
  uint64_t batch_bytes = 256 * 1024;
  double batch_interval_seconds = 0.02;
};

/// \brief The single-threaded append side of the log. Deliberately
/// lock-free: DurableIndex owns the only instance and reaches it through a
/// field annotated GUARDED_BY/PT_GUARDED_BY its "DurableIndex::state"
/// SharedMutex, so clang -Wthread-safety proves every call happens under
/// that lock (exclusive for appends, shared for the LSN accessors) without
/// this class paying for a second mutex. Any environment failure poisons
/// the writer; callers recover by reopening the directory, never by
/// retrying.
class WalWriter {
 public:
  /// \brief Start a fresh segment `seq` in `dir`; the first record appended
  /// gets LSN `next_lsn`.
  static StatusOr<std::unique_ptr<WalWriter>> Open(
      WalEnv* env, const std::string& dir, uint64_t seq, uint64_t next_lsn,
      const WalWriterOptions& options);

  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// \brief Append an insert/erase record; returns its LSN. The record is
  /// durable per the writer's policy when the call returns OK.
  StatusOr<uint64_t> AppendInsert(const Object& object);
  StatusOr<uint64_t> AppendErase(const Object& object);

  /// \brief Append a checkpoint marker: `snapshot_file` (relative to the
  /// WAL directory) covers every record with LSN <= checkpoint_lsn. Always
  /// fsynced, regardless of policy.
  StatusOr<uint64_t> AppendCheckpoint(uint64_t checkpoint_lsn,
                                      std::string_view snapshot_file);

  /// \brief Seal the current segment with a rotate record (fsynced), close
  /// it and start segment seq+1.
  Status Rotate();

  /// \brief Force an fsync of everything appended so far.
  Status Sync();

  uint64_t next_lsn() const { return next_lsn_; }
  /// \brief Highest LSN known durable (0 before the first sync; tracks
  /// every append under kAlways).
  uint64_t last_synced_lsn() const { return last_synced_lsn_; }
  uint64_t segment_seq() const { return seq_; }
  /// \brief Bytes in the current segment (header included) — the live-log
  /// size the checkpoint trigger watches.
  uint64_t segment_bytes() const { return segment_bytes_; }
  std::string segment_path() const;

  /// \brief Sticky failure state (environment errors, e.g. a full disk or
  /// an injected crash).
  Status status() const { return status_; }

 private:
  WalWriter(WalEnv* env, std::string dir, const WalWriterOptions& options)
      : env_(env), dir_(std::move(dir)), options_(options) {}

  Status OpenSegment(uint64_t seq);
  StatusOr<uint64_t> AppendRecord(WalRecordType type, const void* payload,
                                  size_t payload_size);
  StatusOr<uint64_t> AppendObjectRecord(WalRecordType type,
                                        const Object& object);
  Status MaybeSync(bool force);

  WalEnv* env_;
  std::string dir_;
  WalWriterOptions options_;
  std::unique_ptr<WalWritableFile> file_;
  uint64_t seq_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t last_synced_lsn_ = 0;
  uint64_t last_appended_lsn_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t unsynced_bytes_ = 0;
  std::chrono::steady_clock::time_point last_sync_time_ =
      std::chrono::steady_clock::now();
  Status status_;
};

/// \brief Seal segment `seq` of `dir` — left rotate-less by a previous
/// process that closed or crashed mid-life — by appending a rotate record
/// with LSN `lsn` handing off to `next_seq`, then fsyncing and closing.
/// Called by DurableIndex::Open before the writer creates `next_seq`, so
/// the rotate chain every sealed segment must carry stays intact and deep
/// fsck cannot mistake a reopen boundary for mid-log damage.
Status SealWalSegment(WalEnv* env, const std::string& dir, uint64_t seq,
                      uint64_t lsn, uint64_t next_seq);

}  // namespace irhint

#endif  // IRHINT_WAL_WAL_WRITER_H_

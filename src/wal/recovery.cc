#include "wal/recovery.h"

#include <algorithm>
#include <utility>

#include "data/corpus.h"
#include "storage/index_io.h"
#include "wal/wal_reader.h"

namespace irhint {

StatusOr<std::vector<uint64_t>> ListCheckpointLsns(WalEnv* env,
                                                   const std::string& dir) {
  auto names = env->ListDir(dir);
  IRHINT_RETURN_NOT_OK(names.status());
  std::vector<uint64_t> lsns;
  for (const std::string& name : *names) {
    uint64_t lsn = 0;
    if (ParseCheckpointFileName(name, &lsn)) lsns.push_back(lsn);
  }
  std::sort(lsns.rbegin(), lsns.rend());
  return lsns;
}

StatusOr<std::vector<uint64_t>> ListWalSegments(WalEnv* env,
                                                const std::string& dir) {
  auto names = env->ListDir(dir);
  IRHINT_RETURN_NOT_OK(names.status());
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentFileName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

namespace {

StatusOr<std::unique_ptr<TemporalIrIndex>> FreshIndex(
    const RecoveryOptions& options) {
  std::unique_ptr<TemporalIrIndex> index =
      CreateIndex(options.kind, options.config);
  if (index == nullptr) {
    return Status::InvalidArgument("unknown index kind");
  }
  Corpus empty;
  empty.DeclareDomain(1);  // inserts grow the domain as needed
  IRHINT_RETURN_NOT_OK(empty.Finalize());
  IRHINT_RETURN_NOT_OK(index->Build(empty));
  return index;
}

}  // namespace

StatusOr<RecoveryResult> RecoveryManager::Recover(
    const RecoveryOptions& options) {
  RecoveryResult result;
  result.kind = options.kind;

  if (!env_->FileExists(dir_)) {
    auto fresh = FreshIndex(options);
    IRHINT_RETURN_NOT_OK(fresh.status());
    result.index = std::move(fresh).value();
    return result;
  }

  auto checkpoints = ListCheckpointLsns(env_, dir_);
  IRHINT_RETURN_NOT_OK(checkpoints.status());
  auto segments = ListWalSegments(env_, dir_);
  IRHINT_RETURN_NOT_OK(segments.status());

  // Newest checkpoint snapshot that still loads wins; bit-rotted ones are
  // passed over (the LSN-contiguity check below fails recovery if their
  // records were already garbage-collected, rather than losing data
  // silently).
  for (const uint64_t lsn : *checkpoints) {
    const std::string name = CheckpointFileName(lsn);
    auto loaded = LoadIndexCheckpoint(WalPathJoin(dir_, name),
                                      options.snapshot_read);
    if (!loaded.ok()) {
      ++result.snapshots_rejected;
      continue;
    }
    if (loaded->wal_lsn != lsn) {
      // File renamed to the wrong LSN: treat as unusable, not fatal.
      ++result.snapshots_rejected;
      continue;
    }
    result.index = std::move(loaded->loaded.index);
    result.kind = loaded->loaded.kind;
    result.snapshot_file = name;
    result.snapshot_lsn = lsn;
    result.next_object_id = loaded->next_object_id;
    break;
  }
  if (result.index == nullptr) {
    auto fresh = FreshIndex(options);
    IRHINT_RETURN_NOT_OK(fresh.status());
    result.index = std::move(fresh).value();
  }

  const uint64_t base_lsn = result.snapshot_lsn;
  uint64_t expected_lsn = base_lsn + 1;
  bool final_segment_deleted = false;
  for (size_t i = 0; i < segments->size(); ++i) {
    const uint64_t seq = (*segments)[i];
    const bool is_final = i + 1 == segments->size();
    const std::string path = WalPathJoin(dir_, WalSegmentFileName(seq));
    auto contents = ReadWalSegment(env_, path);
    IRHINT_RETURN_NOT_OK(contents.status());
    if (!contents->clean) {
      if (!is_final) {
        // Sealed segments were fully fsynced by Rotate before the next
        // segment opened, so damage here cannot be a crash artifact.
        return Status::Corruption(
            "wal mid-log corruption in " + path + ": " +
            contents->tail_status.message());
      }
      // Any decode failure in the final (live) segment ends the log: a
      // crash can tear it mid-record or mid-fsync, and out-of-order page
      // writeback can even corrupt an unsynced record while later ones
      // survive (which is why a valid record after the damage proves
      // nothing here). Drop the tail and physically truncate so the
      // segment parses to EOF on the next recovery.
      result.torn_bytes_dropped =
          contents->file_bytes - contents->valid_bytes;
      if (options.truncate_torn_tail) {
        if (contents->valid_bytes < kWalSegmentHeaderBytes) {
          // The crash cut the segment inside its own header, so not a
          // single byte is usable and a truncated stub could never parse
          // again (it would read as mid-log corruption once the writer
          // moves on). Remove the file and hand its sequence number back
          // to the writer.
          IRHINT_RETURN_NOT_OK(env_->DeleteFile(path));
          IRHINT_RETURN_NOT_OK(env_->SyncDir(dir_));
          final_segment_deleted = true;
        } else {
          IRHINT_RETURN_NOT_OK(
              env_->TruncateFile(path, contents->valid_bytes));
        }
      }
    }
    if (is_final && !final_segment_deleted && contents->records.empty() &&
        options.truncate_torn_tail) {
      // A record-less live segment (a no-op open/close, or a crash right
      // after the header was written): there is nothing to seal into the
      // rotate chain, so delete it and hand its sequence number back to
      // the writer, exactly like the headerless-torn case above.
      IRHINT_RETURN_NOT_OK(env_->DeleteFile(path));
      IRHINT_RETURN_NOT_OK(env_->SyncDir(dir_));
      final_segment_deleted = true;
    }
    if (!is_final || !final_segment_deleted) {
      result.live_segment_seq = seq;
      result.live_segment_sealed = contents->ends_with_rotate;
    }
    for (const WalRecord& record : contents->records) {
      if (record.lsn <= base_lsn) continue;  // covered by the snapshot
      if (record.lsn != expected_lsn) {
        // LSNs are dense; a jump means records were lost (e.g. a segment
        // garbage-collected against a checkpoint whose snapshot no longer
        // loads).
        return Status::Corruption(
            "wal records missing before " + path + ": expected LSN " +
            std::to_string(expected_lsn) + ", found " +
            std::to_string(record.lsn));
      }
      ++expected_lsn;
      // A failed apply is skipped, never an error: the inner indexes are
      // deterministic and replay reconstructs the exact state each record
      // was logged against, so the same call failed identically (and was
      // surfaced to the caller) when it was first logged.
      switch (record.type) {
        case WalRecordType::kInsert: {
          if (result.index->Insert(record.object).ok()) {
            ++result.records_replayed;
          } else {
            ++result.records_skipped;
          }
          result.next_object_id = std::max<uint64_t>(
              result.next_object_id, uint64_t{record.object.id} + 1);
          break;
        }
        case WalRecordType::kErase: {
          if (result.index->Erase(record.object).ok()) {
            ++result.records_replayed;
          } else {
            ++result.records_skipped;
          }
          break;
        }
        case WalRecordType::kCheckpoint:
        case WalRecordType::kRotate:
          break;  // control records carry no state
      }
    }
  }

  result.last_lsn = expected_lsn - 1;
  result.next_segment_seq = segments->empty() ? 1 : segments->back() + 1;
  if (final_segment_deleted) result.next_segment_seq = segments->back();
  return result;
}

}  // namespace irhint

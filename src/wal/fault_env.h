// Fault-injecting WalEnv for the crash-torture harness. Wraps a real
// environment write-through, counts every mutating filesystem operation,
// and "crashes" the process at an armed operation budget: the op fails
// with IoError, a mid-record Append may leave a torn prefix, a mid-fsync
// Sync leaves everything since the last sync volatile, and a mid-snapshot
// WriteIndexSnapshot leaves garbage bytes. After the crash every further
// mutation fails, and MaterializeCrashState() rewrites the on-disk files
// to a state the kernel could have left after power loss: each WAL file
// keeps its synced prefix plus a random portion of the unsynced tail,
// optionally with a flipped bit in that tail.

#ifndef IRHINT_WAL_FAULT_ENV_H_
#define IRHINT_WAL_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/wal_env.h"

namespace irhint {

class FaultInjectingWalEnv : public WalEnv {
 public:
  /// \brief Wrap `base` (not owned; typically DefaultWalEnv()).
  explicit FaultInjectingWalEnv(WalEnv* base) : base_(base) {}

  /// \brief Crash on the `ops_from_now`-th mutating operation counted from
  /// now (1 = the very next one). `seed` drives the torn-prefix length.
  void ArmCrash(uint64_t ops_from_now, uint64_t seed);

  bool crashed() const { return crashed_; }
  uint64_t ops_performed() const { return ops_; }

  /// \brief After a crash: for every file written through this env, keep
  /// the synced prefix plus a uniformly random part of the unsynced tail
  /// (what the page cache may or may not have flushed). With `flip_bits`,
  /// one surviving unsynced byte additionally gets a random bit flipped —
  /// a torn sector, which the CRC framing must catch. Call before
  /// recovering with the real environment.
  Status MaterializeCrashState(std::mt19937_64* rng, bool flip_bits);

  // -- WalEnv ---------------------------------------------------------------

  StatusOr<std::unique_ptr<WalWritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<WalWritableFile>> ReopenWritableFile(
      const std::string& path) override;
  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDirIfMissing(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  Status WriteIndexSnapshot(const TemporalIrIndex& index,
                            const std::string& path, uint64_t lsn,
                            uint64_t next_object_id) override;

 private:
  friend class FaultInjectingFile;

  struct FileState {
    uint64_t synced_len = 0;    // survives the crash for certain
    uint64_t appended_len = 0;  // upper bound on what can survive
  };

  /// \brief Count one mutating op; returns true when this op is the crash
  /// point (or the crash already happened).
  bool CountOp();
  static Status CrashedStatus() {
    return Status::IoError("simulated crash: filesystem is gone");
  }

  WalEnv* base_;
  uint64_t ops_ = 0;
  uint64_t crash_at_op_ = 0;  // 0 = disarmed
  bool crashed_ = false;
  std::mt19937_64 rng_;
  std::map<std::string, FileState> files_;
};

}  // namespace irhint

#endif  // IRHINT_WAL_FAULT_ENV_H_

// IndexKind lives in its own header so that temporal_ir_index.h (which
// every index implements and whose Kind() returns one) does not need the
// full factory interface.

#ifndef IRHINT_CORE_INDEX_KIND_H_
#define IRHINT_CORE_INDEX_KIND_H_

namespace irhint {

enum class IndexKind {
  kNaiveScan,
  kTif,
  kTifSlicing,
  kTifSharding,
  kTifHintBinarySearch,
  kTifHintMergeSort,
  kTifHintSlicing,
  kIrHintPerf,
  kIrHintSize,
  kScoredTif,
  kScoredIrHint,
};

}  // namespace irhint

#endif  // IRHINT_CORE_INDEX_KIND_H_

// Naive full-scan evaluator: the correctness oracle for every index in the
// library (and the no-index lower bound in ablation discussions).

#ifndef IRHINT_CORE_NAIVE_SCAN_H_
#define IRHINT_CORE_NAIVE_SCAN_H_

#include <string_view>
#include <vector>

#include "common/flat_hash_map.h"
#include "core/temporal_ir_index.h"

namespace irhint {

/// \brief Answers time-travel IR queries by scanning every live object.
class NaiveScan : public CountingTemporalIrIndex {
 public:
  NaiveScan() = default;

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "NaiveScan"; }
  IndexKind Kind() const override { return IndexKind::kNaiveScan; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

 private:
  friend struct IntegrityTestPeer;

  std::vector<Object> objects_;
  FlatHashMap<ObjectId, uint32_t> slot_of_;
  std::vector<bool> deleted_;
};

}  // namespace irhint

#endif  // IRHINT_CORE_NAIVE_SCAN_H_

#include "core/durable_index.h"

#include <algorithm>
#include <utility>

#include "wal/wal_format.h"

namespace irhint {

StatusOr<std::unique_ptr<DurableIndex>> DurableIndex::Open(
    const std::string& wal_dir, const DurableIndexOptions& options,
    WalEnv* env) {
  if (env == nullptr) env = DefaultWalEnv();
  if (options.gc_keep_snapshots < 1) {
    return Status::InvalidArgument("gc_keep_snapshots must be >= 1");
  }
  IRHINT_RETURN_NOT_OK(env->CreateDirIfMissing(wal_dir));

  // Sweep temp files a crashed snapshot write may have left behind.
  auto names = env->ListDir(wal_dir);
  IRHINT_RETURN_NOT_OK(names.status());
  for (const std::string& name : *names) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      IRHINT_RETURN_NOT_OK(env->DeleteFile(WalPathJoin(wal_dir, name)));
    }
  }

  RecoveryOptions recovery_options;
  recovery_options.kind = options.kind;
  recovery_options.config = options.config;
  recovery_options.snapshot_read = options.snapshot_read;
  auto recovered = RecoveryManager(env, wal_dir).Recover(recovery_options);
  IRHINT_RETURN_NOT_OK(recovered.status());

  uint64_t writer_next_lsn = recovered->last_lsn + 1;
  if (recovered->live_segment_seq != 0 && !recovered->live_segment_sealed) {
    // The previous process closed (or crashed) without rotating its live
    // segment. Seal it before the writer creates the next segment — the
    // rotate chain must be intact by the time the new segment exists, or a
    // crash in between would leave a rotate-less sealed segment that deep
    // fsck rightly flags. The rotate record consumes one LSN, keeping the
    // log dense across the reopen boundary.
    IRHINT_RETURN_NOT_OK(SealWalSegment(env, wal_dir,
                                        recovered->live_segment_seq,
                                        writer_next_lsn,
                                        recovered->next_segment_seq));
    ++writer_next_lsn;
  }

  WalWriterOptions writer_options;
  writer_options.durability = options.durability;
  writer_options.batch_bytes = options.batch_bytes;
  writer_options.batch_interval_seconds = options.batch_interval_seconds;
  auto writer = WalWriter::Open(env, wal_dir, recovered->next_segment_seq,
                                writer_next_lsn, writer_options);
  IRHINT_RETURN_NOT_OK(writer.status());

  std::unique_ptr<DurableIndex> index(new DurableIndex());
  index->env_ = env;
  index->dir_ = wal_dir;
  index->options_ = options;
  {
    // Uncontended (the index is not published yet), but the guarded
    // members are only ever touched under the state lock.
    WriterLock lock(&index->mutex_);
    index->inner_ = std::move(recovered->index);
    index->writer_ = std::move(writer).value();
    index->name_ = "durable:" + std::string(index->inner_->Name());
    index->recovery_info_ = std::move(recovered).value();
    index->recovery_info_.index = nullptr;  // moved into inner_
    index->next_object_id_ = index->recovery_info_.next_object_id;
  }
  if (options.checkpoint_bytes > 0 && options.background_checkpoint) {
    index->ckpt_thread_ =
        std::thread(&DurableIndex::CheckpointThreadMain, index.get());
  }
  return index;
}

DurableIndex::~DurableIndex() {
  if (ckpt_thread_.joinable()) {
    {
      MutexLock lock(&ckpt_mutex_);
      ckpt_stop_ = true;
    }
    ckpt_cv_.NotifyAll();
    ckpt_thread_.join();
  }
  WriterLock lock(&mutex_);
  if (writer_ != nullptr) (void)writer_->Sync();  // best effort on close
}

Status DurableIndex::Build(const Corpus& corpus) {
  {
    ReaderLock lock(&mutex_);
    if (writer_->next_lsn() != 1) {
      return Status::InvalidArgument(
          "durable index already has logged state; Build is only valid on a "
          "fresh WAL directory");
    }
  }
  for (const Object& object : corpus.objects()) {
    IRHINT_RETURN_NOT_OK(Insert(object));
  }
  return Flush();
}

void DurableIndex::Query(const irhint::Query& query,
                         std::vector<ObjectId>* out) const {
  ReaderLock lock(&mutex_);
  inner_->Query(query, out);
}

Status DurableIndex::TopKQuery(const irhint::Query& query, uint32_t k,
                               std::vector<ScoredHit>* out) const {
  ReaderLock lock(&mutex_);
  return inner_->TopKQuery(query, k, out);
}

Status DurableIndex::Insert(const Object& object) {
  bool want_checkpoint = false;
  {
    WriterLock lock(&mutex_);
    // Enforce before logging what the inner indexes only assume: strictly
    // increasing ids (Section 5.5) and a well-formed interval (an inverted
    // one would be flagged as corruption by the log decoder).
    if (object.id < next_object_id_) {
      return Status::AlreadyExists(
          "object id " + std::to_string(object.id) +
          " is below the insert watermark " +
          std::to_string(next_object_id_) + " (ids must strictly increase)");
    }
    if (object.interval.st > object.interval.end) {
      return Status::InvalidArgument("interval start exceeds end");
    }
    auto lsn = writer_->AppendInsert(object);
    IRHINT_RETURN_NOT_OK(lsn.status());
    // The id is burned from here on, even if the apply fails — replay
    // advances the watermark over every logged insert.
    next_object_id_ = uint64_t{object.id} + 1;
    // A failed apply (e.g. out-of-domain endpoint) leaves its record in
    // the log; replay skips it because it fails identically there (the
    // inner index is deterministic).
    IRHINT_RETURN_NOT_OK(inner_->Insert(object));
    want_checkpoint = ShouldCheckpointLocked();
  }
  if (!want_checkpoint) return Status::OK();
  if (options_.background_checkpoint) {
    {
      MutexLock lock(&ckpt_mutex_);
      ckpt_requested_ = true;
    }
    ckpt_cv_.NotifyAll();
    return Status::OK();
  }
  return RunCheckpoint();
}

Status DurableIndex::Erase(const Object& object) {
  bool want_checkpoint = false;
  {
    WriterLock lock(&mutex_);
    if (object.id >= next_object_id_) {
      return Status::NotFound("object id " + std::to_string(object.id) +
                              " was never inserted");
    }
    if (object.interval.st > object.interval.end) {
      return Status::InvalidArgument("interval start exceeds end");
    }
    auto lsn = writer_->AppendErase(object);
    IRHINT_RETURN_NOT_OK(lsn.status());
    IRHINT_RETURN_NOT_OK(inner_->Erase(object));
    want_checkpoint = ShouldCheckpointLocked();
  }
  if (!want_checkpoint) return Status::OK();
  if (options_.background_checkpoint) {
    {
      MutexLock lock(&ckpt_mutex_);
      ckpt_requested_ = true;
    }
    ckpt_cv_.NotifyAll();
    return Status::OK();
  }
  return RunCheckpoint();
}

size_t DurableIndex::MemoryUsageBytes() const {
  ReaderLock lock(&mutex_);
  return inner_->MemoryUsageBytes();
}

std::optional<QueryCounters> DurableIndex::Stats() const {
  ReaderLock lock(&mutex_);
  return inner_->Stats();
}

void DurableIndex::ResetStats() {
  ReaderLock lock(&mutex_);
  inner_->ResetStats();
}

void DurableIndex::EnableStats(bool enabled) {
  ReaderLock lock(&mutex_);
  inner_->EnableStats(enabled);
}

IndexKind DurableIndex::Kind() const {
  // The inner index never changes after Open, but the pointer is guarded;
  // the shared lock costs one uncontended atomic in exchange for keeping
  // the access provably safe.
  ReaderLock lock(&mutex_);
  return inner_->Kind();
}

Status DurableIndex::SaveTo(SnapshotWriter*) const {
  return Status::NotSupported(
      "durable index persists via its WAL directory; use TriggerCheckpoint");
}

Status DurableIndex::LoadFrom(SnapshotReader*) {
  return Status::NotSupported(
      "durable index recovers via DurableIndex::Open, not LoadFrom");
}

Status DurableIndex::Flush() {
  WriterLock lock(&mutex_);
  return writer_->Sync();
}

Status DurableIndex::TriggerCheckpoint() { return RunCheckpoint(); }

Status DurableIndex::WaitForCheckpoint() {
  MutexLock lock(&ckpt_mutex_);
  while (ckpt_requested_ || ckpt_running_) ckpt_cv_.Wait(&ckpt_mutex_);
  return last_checkpoint_status_;
}

Status DurableIndex::IntegrityCheck(CheckLevel level) const {
  // One shared lock for the whole audit: the accessors each lock, so the
  // checks below read the members directly to stay re-entrancy free and to
  // see one consistent state.
  ReaderLock lock(&mutex_);
  if (inner_ == nullptr || writer_ == nullptr) {
    return Status::Corruption("durable index missing inner index or log "
                              "writer");
  }
  // Id watermark: may only grow past what recovery established, otherwise
  // a re-ingest after the next recovery would hand out duplicate ids.
  if (next_object_id_ < recovery_info_.next_object_id) {
    return Status::Corruption("durable index id watermark regressed below "
                              "recovery point");
  }
  // LSN bookkeeping: assignments are dense and monotone from the recovery
  // point, and the synced watermark can never pass the assignment cursor.
  if (writer_->next_lsn() <= recovery_info_.last_lsn) {
    return Status::Corruption("durable index LSN cursor regressed below "
                              "recovery point");
  }
  if (writer_->last_synced_lsn() >= writer_->next_lsn()) {
    return Status::Corruption("durable index synced-LSN watermark ahead of "
                              "assignment cursor");
  }
  if (writer_->segment_seq() < recovery_info_.next_segment_seq) {
    return Status::Corruption("durable index segment sequence regressed");
  }
  return inner_->IntegrityCheck(level);
}

uint64_t DurableIndex::next_lsn() const {
  ReaderLock lock(&mutex_);
  return writer_->next_lsn();
}

uint64_t DurableIndex::last_synced_lsn() const {
  ReaderLock lock(&mutex_);
  return writer_->last_synced_lsn();
}

uint64_t DurableIndex::wal_segment_seq() const {
  ReaderLock lock(&mutex_);
  return writer_->segment_seq();
}

uint64_t DurableIndex::wal_segment_bytes() const {
  ReaderLock lock(&mutex_);
  return writer_->segment_bytes();
}

uint64_t DurableIndex::next_object_id() const {
  ReaderLock lock(&mutex_);
  return next_object_id_;
}

bool DurableIndex::ShouldCheckpointLocked() const {
  return options_.checkpoint_bytes > 0 &&
         writer_->segment_bytes() >= options_.checkpoint_bytes;
}

Status DurableIndex::RunCheckpoint() {
  MutexLock serial(&ckpt_serial_mutex_);
  uint64_t live_seq = 0;
  uint64_t ckpt_lsn = 0;
  {
    WriterLock lock(&mutex_);
    IRHINT_RETURN_NOT_OK(writer_->status());
    // Seal the live segment; the rotate record's LSN is the exact upper
    // bound of what the snapshot will contain, because we still hold the
    // update lock.
    IRHINT_RETURN_NOT_OK(writer_->Rotate());
    ckpt_lsn = writer_->next_lsn() - 1;
    const std::string name = CheckpointFileName(ckpt_lsn);
    IRHINT_RETURN_NOT_OK(env_->WriteIndexSnapshot(
        *inner_, WalPathJoin(dir_, name), ckpt_lsn, next_object_id_));
    auto marker = writer_->AppendCheckpoint(ckpt_lsn, name);
    IRHINT_RETURN_NOT_OK(marker.status());
    live_seq = writer_->segment_seq();
  }
  // Deleting sealed segments and stale snapshots needs no lock; recovery
  // only ever runs on a closed directory.
  return GarbageCollect(live_seq, ckpt_lsn);
}

Status DurableIndex::GarbageCollect(uint64_t live_seq,
                                    uint64_t keep_ckpt_lsn) {
  // Every segment before the live one only holds records <= keep_ckpt_lsn,
  // all covered by the snapshot just written.
  auto segments = ListWalSegments(env_, dir_);
  IRHINT_RETURN_NOT_OK(segments.status());
  for (const uint64_t seq : *segments) {
    if (seq >= live_seq) continue;
    IRHINT_RETURN_NOT_OK(
        env_->DeleteFile(WalPathJoin(dir_, WalSegmentFileName(seq))));
  }
  auto checkpoints = ListCheckpointLsns(env_, dir_);  // newest first
  IRHINT_RETURN_NOT_OK(checkpoints.status());
  uint32_t kept = 0;
  for (const uint64_t lsn : *checkpoints) {
    if (lsn > keep_ckpt_lsn) continue;  // never GC a newer one
    if (++kept <= options_.gc_keep_snapshots) continue;
    IRHINT_RETURN_NOT_OK(
        env_->DeleteFile(WalPathJoin(dir_, CheckpointFileName(lsn))));
  }
  return env_->SyncDir(dir_);
}

void DurableIndex::CheckpointThreadMain() {
  for (;;) {
    {
      MutexLock lock(&ckpt_mutex_);
      while (!ckpt_requested_ && !ckpt_stop_) ckpt_cv_.Wait(&ckpt_mutex_);
      if (ckpt_stop_) return;
      ckpt_requested_ = false;
      ckpt_running_ = true;
    }
    const Status status = RunCheckpoint();
    {
      MutexLock lock(&ckpt_mutex_);
      ckpt_running_ = false;
      last_checkpoint_status_ = status;
    }
    ckpt_cv_.NotifyAll();
  }
}

}  // namespace irhint

// Per-query work counters — the observability layer of the query engine.
//
// Every counting index owns one CounterSink. Query() (which is const and
// may run concurrently on many threads) tallies a local QueryCounters on
// the stack and flushes it into the sink once per query; the sink spreads
// the flushes over cacheline-aligned striped atomics so concurrent readers
// never contend on one line, and merges the stripes on demand. Collection
// is off by default: a disabled sink drops the flush after a single relaxed
// load, so the counters cost nothing on the measurement paths.
//
// Concurrency (DESIGN.md §10): deliberately lock-free — every shared field
// is a std::atomic with relaxed ordering, so there is nothing here for a
// GUARDED_BY annotation to guard and no lock to rank. Merged()/Reset()
// are racy-by-design best-effort reads against concurrent Accumulate()
// (each counter is independently atomic; cross-counter snapshots are not
// promised), which is exactly the monitoring contract the callers want.

#ifndef IRHINT_CORE_QUERY_COUNTERS_H_
#define IRHINT_CORE_QUERY_COUNTERS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <thread>

namespace irhint {

/// \brief Work performed while answering one query (or a batch, once
/// merged). Semantics shared by every index:
///  * divisions_visited: index substructures consulted — postings lists,
///    postings-HINT traversals, or HINT partition subdivisions.
///  * postings_scanned: posting entries read by filter or merge scans.
///  * intersections_performed: list-intersection passes executed.
///  * candidates_verified: candidate objects checked against the temporal
///    or containment predicate after the initial filter.
///
/// Ranked-retrieval counters (DESIGN.md §12), zero for Boolean queries:
///  * postings_scored: impact evaluations performed by TopKQuery — the cost
///    the MaxScore traversal tries to minimise relative to the oracle.
///  * blocks_skipped: score blocks pruned by time bounds or block max-score.
///  * divisions_skipped: whole divisions pruned without touching postings.
struct QueryCounters {
  uint64_t divisions_visited = 0;
  uint64_t postings_scanned = 0;
  uint64_t intersections_performed = 0;
  uint64_t candidates_verified = 0;
  uint64_t postings_scored = 0;
  uint64_t blocks_skipped = 0;
  uint64_t divisions_skipped = 0;

  QueryCounters& operator+=(const QueryCounters& other) {
    divisions_visited += other.divisions_visited;
    postings_scanned += other.postings_scanned;
    intersections_performed += other.intersections_performed;
    candidates_verified += other.candidates_verified;
    postings_scored += other.postings_scored;
    blocks_skipped += other.blocks_skipped;
    divisions_skipped += other.divisions_skipped;
    return *this;
  }
};

/// \brief Thread-safe accumulator for QueryCounters.
///
/// Writers (concurrent const Query() calls) each land on a stripe derived
/// from a per-thread id, so the common case is an uncontended relaxed
/// fetch_add on a private cacheline. Readers merge all stripes; merging is
/// meant for quiescent or best-effort monitoring reads.
class CounterSink {
 public:
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Fold one query's counters in. No-op while disabled.
  void Accumulate(const QueryCounters& c) const {
    if (!enabled()) return;
    Stripe& s = stripes_[ThreadStripe()];
    s.divisions_visited.fetch_add(c.divisions_visited,
                                  std::memory_order_relaxed);
    s.postings_scanned.fetch_add(c.postings_scanned,
                                 std::memory_order_relaxed);
    s.intersections_performed.fetch_add(c.intersections_performed,
                                        std::memory_order_relaxed);
    s.candidates_verified.fetch_add(c.candidates_verified,
                                    std::memory_order_relaxed);
    s.postings_scored.fetch_add(c.postings_scored, std::memory_order_relaxed);
    s.blocks_skipped.fetch_add(c.blocks_skipped, std::memory_order_relaxed);
    s.divisions_skipped.fetch_add(c.divisions_skipped,
                                  std::memory_order_relaxed);
  }

  /// \brief Sum of every stripe (i.e. every thread) since the last Reset().
  QueryCounters Merged() const {
    QueryCounters total;
    for (const Stripe& s : stripes_) {
      total.divisions_visited +=
          s.divisions_visited.load(std::memory_order_relaxed);
      total.postings_scanned +=
          s.postings_scanned.load(std::memory_order_relaxed);
      total.intersections_performed +=
          s.intersections_performed.load(std::memory_order_relaxed);
      total.candidates_verified +=
          s.candidates_verified.load(std::memory_order_relaxed);
      total.postings_scored +=
          s.postings_scored.load(std::memory_order_relaxed);
      total.blocks_skipped += s.blocks_skipped.load(std::memory_order_relaxed);
      total.divisions_skipped +=
          s.divisions_skipped.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() const {
    for (Stripe& s : stripes_) {
      s.divisions_visited.store(0, std::memory_order_relaxed);
      s.postings_scanned.store(0, std::memory_order_relaxed);
      s.intersections_performed.store(0, std::memory_order_relaxed);
      s.candidates_verified.store(0, std::memory_order_relaxed);
      s.postings_scored.store(0, std::memory_order_relaxed);
      s.blocks_skipped.store(0, std::memory_order_relaxed);
      s.divisions_skipped.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> divisions_visited{0};
    std::atomic<uint64_t> postings_scanned{0};
    std::atomic<uint64_t> intersections_performed{0};
    std::atomic<uint64_t> candidates_verified{0};
    std::atomic<uint64_t> postings_scored{0};
    std::atomic<uint64_t> blocks_skipped{0};
    std::atomic<uint64_t> divisions_skipped{0};
  };

  // Threads are assigned stripes round-robin on first use; 16 stripes keep
  // typical pool sizes collision-free without bloating every index.
  static constexpr size_t kStripes = 16;

  static size_t ThreadStripe() {
    static std::atomic<size_t> next{0};
    thread_local const size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed) % kStripes;
    return stripe;
  }

  mutable std::array<Stripe, kStripes> stripes_;
  std::atomic<bool> enabled_{false};
};

}  // namespace irhint

#endif  // IRHINT_CORE_QUERY_COUNTERS_H_

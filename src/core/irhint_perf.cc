#include "core/irhint_perf.h"

#include <algorithm>
#include <limits>

#include "common/checked_math.h"
#include "hint/cost_model.h"

namespace irhint {

template <typename Fn>
void IrHintPerf::ForAssignments(const Interval& interval, Fn&& fn) {
  uint64_t first, last;
  mapper_.CellSpan(interval, &first, &last);
  AssignToPartitions(m_, first, last, [&](const PartitionRef& ref) {
    const bool ends_inside = (last >> (m_ - ref.level)) == ref.index;
    const SubdivRole role = ref.original ? (ends_inside ? kOin : kOaft)
                                         : (ends_inside ? kRin : kRaft);
    fn(ref, role);
  });
}

Status IrHintPerf::Build(const Corpus& corpus) {
  if (corpus.domain_end() >=
      std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  int m = options_.num_bits;
  if (m < 0) {
    // The time-first design lets the interval-only cost model pick m
    // (Section 5.4: "the cost model in [19] effectively determines the
    // best m value because of the HINT-first design").
    std::vector<IntervalRecord> records;
    records.reserve(corpus.size());
    for (const Object& o : corpus.objects()) {
      records.push_back(IntervalRecord{o.id, o.interval});
    }
    // irHINT's per-division probe is far heavier than plain HINT's (the
    // division tIF performs one key lookup per query element plus the
    // list intersections), so weigh probes accordingly; this steers the
    // model toward the smaller m values the Figure 9-style sweep confirms
    // for the performance variant.
    CostModelOptions model;
    model.partition_probe_cost = 256.0;
    m = ChooseHintBits(records, corpus.domain_end(), model);
  }
  if (m > 30) return Status::InvalidArgument("num_bits must be <= 30");
  m_ = m;
  mapper_ = DomainMapper(corpus.domain_end(), m_);
  levels_.Init(m_);
  frequencies_.assign(corpus.dictionary().frequencies().begin(),
                      corpus.dictionary().frequencies().end());
  built_ = true;
  for (const Object& o : corpus.objects()) {
    if (o.interval.end > corpus.domain_end()) {
      return Status::OutOfDomain("interval exceeds declared domain");
    }
    ForAssignments(o.interval, [&](const PartitionRef& ref, SubdivRole role) {
      levels_.FindOrCreate(ref.level, ref.index)
          .subs[role]
          .Add(o.id, o.interval, o.elements);
    });
  }
  // Compact every division inverted file into its read-optimized CSR core.
  levels_.ForEachMutable([](int, uint64_t, Partition& part) {
    for (DivisionTif& sub : part.subs) sub.Finalize();
  });
  return Status::OK();
}

Status IrHintPerf::Insert(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  if (object.interval.st > object.interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (object.interval.end >=
      std::numeric_limits<StoredTime>::max()) {
    return Status::OutOfDomain("interval exceeds 32-bit stored endpoints");
  }
  if (object.interval.end > mapper_.domain_end()) {
    // Time-expanding extension: recent objects that outgrow the declared
    // domain live in a linearly scanned overflow store.
    overflow_.push_back(object);
    std::sort(overflow_.back().elements.begin(),
              overflow_.back().elements.end());
  } else {
    ForAssignments(object.interval,
                   [&](const PartitionRef& ref, SubdivRole role) {
                     levels_.FindOrCreate(ref.level, ref.index)
                         .subs[role]
                         .Add(object.id, object.interval, object.elements);
                   });
  }
  for (ElementId e : object.elements) {
    // GrowToFit widens before the increment; the unchecked `e + 1` wraps
    // to 0 at the max ElementId, making the resize a no-op and the
    // increment an out-of-bounds write (the PR 4 bug class).
    if (e >= frequencies_.size()) {
      frequencies_.resize(GrowToFit(e), 0);
    }
    ++frequencies_[e];
  }
  return Status::OK();
}

Status IrHintPerf::Erase(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  if (object.interval.end > mapper_.domain_end()) {
    for (Object& o : overflow_) {
      if (o.id == object.id) {
        o.id = kTombstoneId;
        for (ElementId e : object.elements) {
          if (e < frequencies_.size() && frequencies_[e] > 0) {
            --frequencies_[e];
          }
        }
        return Status::OK();
      }
    }
    return Status::NotFound("object not present");
  }
  size_t tombstoned = 0;
  ForAssignments(object.interval,
                 [&](const PartitionRef& ref, SubdivRole role) {
                   Partition* part = levels_.Find(ref.level, ref.index);
                   if (part == nullptr) return;
                   tombstoned +=
                       part->subs[role].Tombstone(object.id, object.elements);
                 });
  if (tombstoned == 0) return Status::NotFound("object not present");
  for (ElementId e : object.elements) {
    if (e < frequencies_.size() && frequencies_[e] > 0) --frequencies_[e];
  }
  return Status::OK();
}

void IrHintPerf::Query(const irhint::Query& query, std::vector<ObjectId>* out) const {
  out->clear();
  if (!built_ || query.elements.empty()) return;
  if (query.interval.st > query.interval.end) return;

  // Sort q.d once by global frequency; every division inverted file uses
  // the same least-frequent-first order.
  std::vector<ElementId> elements = query.elements;
  std::sort(elements.begin(), elements.end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });

  DivisionQueryScratch scratch;
  scratch.count = counters_.enabled();
  if (query.interval.st <= mapper_.domain_end()) {
  TraversalState state(m_, mapper_.Cell(query.interval.st),
                       mapper_.Cell(query.interval.end));
  for (int level = m_; level >= 0; --level) {
    const LevelPlan plan = state.PlanLevel(level);
    levels_.ForRange(
        level, plan.f, plan.l, [&](uint64_t j, const Partition& part) {
          CheckMode originals_mode;
          bool scan_replicas = false;
          CheckMode replicas_mode = CheckMode::kNone;
          if (j == plan.f) {
            originals_mode = plan.first_originals;
            scan_replicas = true;
            replicas_mode = plan.first_replicas;
          } else if (j == plan.l) {
            originals_mode = plan.last_originals;
          } else {
            originals_mode = CheckMode::kNone;
          }
          const auto [in_mode, aft_mode] = SplitOriginalsMode(originals_mode);
          part.subs[kOin].Query(elements, query.interval, in_mode, &scratch, out);
          part.subs[kOaft].Query(elements, query.interval, aft_mode, &scratch,
                                 out);
          if (scan_replicas) {
            const auto [rin_mode, raft_mode] =
                SplitReplicasMode(replicas_mode);
            part.subs[kRin].Query(elements, query.interval, rin_mode, &scratch,
                                  out);
            part.subs[kRaft].Query(elements, query.interval, raft_mode, &scratch,
                                   out);
          }
        });
    state.Descend(level);
  }
  }

  // Overflow objects: exhaustive check (both predicates on raw values).
  if (!overflow_.empty()) {
    std::vector<ElementId> by_id = query.elements;
    std::sort(by_id.begin(), by_id.end());
    for (const Object& o : overflow_) {
      if (o.id != kTombstoneId && Overlaps(o.interval, query.interval) &&
          o.ContainsAll(by_id)) {
        out->push_back(o.id);
      }
    }
    scratch.counters.candidates_verified += overflow_.size();
  }
  counters_.Accumulate(scratch.counters);
}

size_t IrHintPerf::MemoryUsageBytes() const {
  size_t bytes = levels_.DirectoryBytes();
  bytes += overflow_.capacity() * sizeof(Object);
  for (const Object& o : overflow_) {
    bytes += o.elements.capacity() * sizeof(ElementId);
  }
  bytes += frequencies_.capacity() * sizeof(uint64_t);
  levels_.ForEach([&bytes](int, uint64_t, const Partition& part) {
    for (const DivisionTif& sub : part.subs) {
      bytes += sub.MemoryUsageBytes();
    }
  });
  return bytes;
}

Status IrHintPerf::IntegrityCheck(CheckLevel level) const {
  if (!built_) {
    if (levels_.num_levels() != 0 || !overflow_.empty()) {
      return Status::Corruption("irhint-perf unbuilt index holds data");
    }
    return Status::OK();
  }
  if (m_ < 0 || m_ > 30) {
    return Status::Corruption("irhint-perf m out of range");
  }
  if (levels_.num_levels() != m_ + 1) {
    return Status::Corruption("irhint-perf level directory shape mismatch");
  }
  const uint64_t element_limit =
      frequencies_.empty() ? DivisionPostings<Posting>::kNoElementLimit
                           : static_cast<uint64_t>(frequencies_.size());
  for (int lvl = 0; lvl <= m_; ++lvl) {
    const std::vector<uint64_t>& keys = levels_.keys(lvl);
    if (keys.size() != levels_.parts(lvl).size()) {
      return Status::Corruption("irhint-perf partition directory mismatch");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0 && keys[i] <= keys[i - 1]) {
        return Status::Corruption("irhint-perf partition keys not sorted");
      }
      if ((keys[i] >> lvl) != 0) {
        return Status::Corruption("irhint-perf partition key out of level "
                                  "range");
      }
    }
  }

  Status status = Status::OK();
  // Live original postings per element; reconciled against frequencies_
  // below (each live object has exactly one original assignment, so the
  // per-element census over O_in/O_aft plus overflow must equal the global
  // frequency table).
  std::vector<uint64_t> census(frequencies_.size(), 0);
  levels_.ForEach([&](int lvl, uint64_t key, const Partition& part) {
    if (!status.ok()) return;
    for (int role = 0; role < 4; ++role) {
      const DivisionTif& sub = part.subs[role];
      status = sub.CheckStructure(level, element_limit);
      if (!status.ok()) return;
      if (level == CheckLevel::kQuick) continue;
      status = sub.ForEachEntry([&](ElementId e, const Posting& p) {
        if (p.st > p.end) {
          return Status::Corruption("irhint-perf posting has inverted "
                                    "interval");
        }
        if (p.end > mapper_.domain_end()) {
          return Status::Corruption("irhint-perf posting exceeds declared "
                                    "domain");
        }
        if (p.id == kTombstoneId) return Status::OK();
        if ((role == kOin || role == kOaft) && e < census.size()) {
          ++census[e];
        }
        // Re-derive the canonical HINT assignment from the stored
        // endpoints: this (level, key, role) must be one of the partitions
        // AssignToPartitions emits for the interval.
        uint64_t first, last;
        mapper_.CellSpan(Interval(p.st, p.end), &first, &last);
        bool matched = false;
        AssignToPartitions(m_, first, last, [&](const PartitionRef& ref) {
          if (ref.level != lvl || ref.index != key) return;
          const bool ends_inside = (last >> (m_ - ref.level)) == ref.index;
          const int expected = ref.original ? (ends_inside ? kOin : kOaft)
                                            : (ends_inside ? kRin : kRaft);
          if (expected == role) matched = true;
        });
        if (!matched) {
          return Status::Corruption("irhint-perf posting stored in "
                                    "non-canonical division");
        }
        return Status::OK();
      });
      if (!status.ok()) return;
    }
  });
  IRHINT_RETURN_NOT_OK(status);
  if (level == CheckLevel::kQuick) return Status::OK();

  for (const Object& o : overflow_) {
    if (o.interval.st > o.interval.end) {
      return Status::Corruption("irhint-perf overflow object has inverted "
                                "interval");
    }
    if (o.interval.end <= mapper_.domain_end()) {
      // Defining property of the overflow store: the object outgrew the
      // declared domain.
      return Status::Corruption("irhint-perf overflow object fits the "
                                "indexed domain");
    }
    for (size_t k = 1; k < o.elements.size(); ++k) {
      if (o.elements[k] <= o.elements[k - 1]) {
        return Status::Corruption("irhint-perf overflow description not "
                                  "sorted");
      }
    }
    if (o.id == kTombstoneId) continue;
    for (ElementId e : o.elements) {
      if (e < census.size()) ++census[e];
    }
  }
  for (size_t e = 0; e < frequencies_.size(); ++e) {
    if (census[e] != frequencies_[e]) {
      return Status::Corruption("irhint-perf frequency table out of sync "
                                "with live postings");
    }
  }
  return Status::OK();
}

Status IrHintPerf::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionMeta);
  writer->WriteI32(options_.num_bits);
  writer->WriteI32(m_);
  writer->WriteU64(mapper_.domain_end());
  writer->WriteU8(built_ ? 1 : 0);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionPayload);
  for (int level = 0; level < levels_.num_levels(); ++level) {
    writer->WriteVector(levels_.keys(level));
    for (const Partition& part : levels_.parts(level)) {
      for (const DivisionTif& sub : part.subs) {
        sub.SaveTo(writer);
      }
    }
  }
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionAux);
  writer->WriteU64(overflow_.size());
  for (const Object& o : overflow_) {
    writer->WriteU32(o.id);
    writer->WriteU64(o.interval.st);
    writer->WriteU64(o.interval.end);
    writer->WriteVector(o.elements);
  }
  writer->WriteVector(frequencies_);
  return writer->EndSection();
}

Status IrHintPerf::LoadFrom(SnapshotReader* reader) {
  auto meta = reader->OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint64_t domain_end = 0;
  uint8_t built = 0;
  IRHINT_RETURN_NOT_OK(meta->ReadI32(&options_.num_bits));
  IRHINT_RETURN_NOT_OK(meta->ReadI32(&m_));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&domain_end));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&built));
  if (m_ < 0 || m_ > 30) {
    return Status::Corruption("irhint snapshot has invalid m");
  }
  mapper_ = DomainMapper(domain_end, m_);
  built_ = built != 0;

  auto payload = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(payload.status());
  levels_.Init(m_);
  for (int level = 0; level <= m_; ++level) {
    std::vector<uint64_t> keys;
    IRHINT_RETURN_NOT_OK(payload->ReadVector(&keys));
    std::vector<Partition> parts(keys.size());
    for (Partition& part : parts) {
      for (DivisionTif& sub : part.subs) {
        IRHINT_RETURN_NOT_OK(sub.LoadFrom(&payload.value()));
      }
    }
    levels_.RestoreLevel(level, std::move(keys), std::move(parts));
  }

  auto aux = reader->OpenSection(kSectionAux);
  IRHINT_RETURN_NOT_OK(aux.status());
  uint64_t num_overflow;
  IRHINT_RETURN_NOT_OK(aux->ReadU64(&num_overflow));
  if (num_overflow > aux->remaining() / 28) {
    // 28 = minimum bytes per overflow object record.
    return Status::Corruption("irhint snapshot overflow count out of bounds");
  }
  overflow_.clear();
  overflow_.reserve(static_cast<size_t>(num_overflow));
  for (uint64_t i = 0; i < num_overflow; ++i) {
    Object o;
    IRHINT_RETURN_NOT_OK(aux->ReadU32(&o.id));
    IRHINT_RETURN_NOT_OK(aux->ReadU64(&o.interval.st));
    IRHINT_RETURN_NOT_OK(aux->ReadU64(&o.interval.end));
    IRHINT_RETURN_NOT_OK(aux->ReadVector(&o.elements));
    overflow_.push_back(std::move(o));
  }
  IRHINT_RETURN_NOT_OK(aux->ReadVector(&frequencies_));
  return Status::OK();
}

}  // namespace irhint

// The common interface of every time-travel IR index in this library:
// the baselines (tIF, tIF+Slicing, tIF+Sharding), the novel IR-first
// methods (tIF+HINT variants, tIF+HINT+Slicing) and the time-first irHINT
// variants.

#ifndef IRHINT_CORE_TEMPORAL_IR_INDEX_H_
#define IRHINT_CORE_TEMPORAL_IR_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/index_kind.h"
#include "core/integrity.h"
#include "core/query_counters.h"
#include "data/corpus.h"
#include "data/object.h"

namespace irhint {

class SnapshotReader;
class SnapshotWriter;

/// \brief Abstract time-travel IR index.
///
/// Query semantics (Definition 2.1): report the ids of all live objects o
/// with Overlap([o.t_st, o.t_end], [q.t_st, q.t_end]) and o.d ⊇ q.d.
/// Every implementation reports each qualifying id exactly once; output
/// order is unspecified.
class TemporalIrIndex {
 public:
  virtual ~TemporalIrIndex() = default;

  /// \brief Build from a finalized corpus. May be called once.
  virtual Status Build(const Corpus& corpus) = 0;

  /// \brief Evaluate a time-travel IR query. `out` is cleared first.
  virtual void Query(const irhint::Query& query, std::vector<ObjectId>* out) const = 0;

  /// \brief Ranked top-k retrieval (DESIGN.md §12): among the live objects
  /// whose lifespan overlaps query.interval and whose description contains
  /// at least one query element (disjunctive semantics, unlike the
  /// conjunctive Boolean Query above), report the k best by accumulated
  /// impact score, ordered by (score desc, id asc). `out` is cleared first
  /// and holds at most k hits. Indexes without impact-scored postings
  /// return NotSupported.
  virtual Status TopKQuery(const irhint::Query& query, uint32_t k,
                           std::vector<ScoredHit>* out) const {
    (void)query;
    (void)k;
    out->clear();
    return Status::NotSupported(std::string(Name()) +
                                " has no impact-scored postings");
  }

  /// \brief Insert a new object. Preconditions: ids strictly increase
  /// across inserts (the update model of Section 5.5) and `elements` is
  /// sorted and duplicate-free (set semantics, as Corpus::Finalize
  /// produces).
  virtual Status Insert(const Object& object) = 0;

  /// \brief Logically delete an object (tombstoning; Section 5.5). The
  /// object must carry the same interval/description it was inserted with.
  virtual Status Erase(const Object& object) = 0;

  /// \brief Heap footprint of the index structure in bytes.
  virtual size_t MemoryUsageBytes() const = 0;

  /// \brief Query-work counters merged across all querying threads since
  /// the last ResetStats(), or nullopt for indexes without counter support.
  /// Counting starts after EnableStats(true); it is off by default so the
  /// measurement paths pay nothing.
  virtual std::optional<QueryCounters> Stats() const { return std::nullopt; }

  /// \brief Zero the counters (no-op without counter support). Safe to call
  /// concurrently with queries; per-thread stripes are cleared relaxed.
  virtual void ResetStats() {}

  /// \brief Turn counter collection on or off (no-op without support).
  virtual void EnableStats(bool enabled) { (void)enabled; }

  /// \brief Stable display name, e.g. "irHINT-perf".
  virtual std::string_view Name() const = 0;

  /// \brief Which factory kind this index is (drives snapshot tagging).
  virtual IndexKind Kind() const = 0;

  /// \brief Serialize the built index into an open SnapshotWriter. The
  /// writer's header/kind is managed by SaveIndex (storage/index_io.h);
  /// implementations only emit their sections.
  virtual Status SaveTo(SnapshotWriter* writer) const = 0;

  /// \brief Restore state from a validated snapshot, replacing any current
  /// contents. On the mmap path large arrays become zero-copy views; the
  /// caller (LoadIndexSnapshot) hands the mapping to set_storage_keepalive()
  /// afterwards so those views stay valid.
  virtual Status LoadFrom(SnapshotReader* reader) = 0;

  /// \brief Audit the index's structural invariants (see DESIGN.md §9).
  /// kQuick validates shapes and bookkeeping in O(metadata); kDeep
  /// re-validates every stored entry (canonical HINT partition assignment,
  /// postings sortedness, cross-structure referential integrity). Returns
  /// Corruption describing the first violation found; never crashes on a
  /// malformed structure. The default covers indexes with no invariants
  /// beyond what their Load paths already enforce.
  virtual Status IntegrityCheck(CheckLevel level) const {
    (void)level;
    return Status::OK();
  }

  /// \brief Retain the resource (e.g. an mmap) backing zero-copy views.
  void set_storage_keepalive(std::shared_ptr<void> keepalive) {
    storage_keepalive_ = std::move(keepalive);
  }

 protected:
  std::shared_ptr<void> storage_keepalive_;
};

/// \brief Convenience base for indexes that maintain QueryCounters: owns
/// the sink and implements the optional stats interface. Query()
/// implementations tally a stack-local QueryCounters and flush it with
/// counters_.Accumulate(local) once per query.
class CountingTemporalIrIndex : public TemporalIrIndex {
 public:
  std::optional<QueryCounters> Stats() const override {
    return counters_.Merged();
  }
  void ResetStats() override { counters_.Reset(); }
  void EnableStats(bool enabled) override { counters_.set_enabled(enabled); }

 protected:
  CounterSink counters_;
};

}  // namespace irhint

#endif  // IRHINT_CORE_TEMPORAL_IR_INDEX_H_

#include "core/naive_scan.h"

#include <algorithm>

#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

Status NaiveScan::Build(const Corpus& corpus) {
  for (const Object& o : corpus.objects()) {
    IRHINT_RETURN_NOT_OK(Insert(o));
  }
  return Status::OK();
}

Status NaiveScan::Insert(const Object& object) {
  if (slot_of_.contains(object.id)) {
    return Status::AlreadyExists("duplicate object id");
  }
  slot_of_.insert_or_assign(object.id,
                            static_cast<uint32_t>(objects_.size()));
  objects_.push_back(object);
  // Descriptions must be sorted for ContainsAll.
  std::sort(objects_.back().elements.begin(), objects_.back().elements.end());
  deleted_.push_back(false);
  return Status::OK();
}

Status NaiveScan::Erase(const Object& object) {
  const uint32_t* slot = slot_of_.find(object.id);
  if (slot == nullptr || deleted_[*slot]) {
    return Status::NotFound("object not present");
  }
  deleted_[*slot] = true;
  return Status::OK();
}

void NaiveScan::Query(const irhint::Query& query, std::vector<ObjectId>* out) const {
  out->clear();
  if (query.elements.empty()) return;
  std::vector<ElementId> sorted = query.elements;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < objects_.size(); ++i) {
    if (deleted_[i]) continue;
    const Object& o = objects_[i];
    if (Overlaps(o.interval, query.interval) && o.ContainsAll(sorted)) {
      out->push_back(o.id);
    }
  }
  QueryCounters local;
  local.divisions_visited = 1;  // the one flat object store
  local.candidates_verified = objects_.size();
  counters_.Accumulate(local);
}

size_t NaiveScan::MemoryUsageBytes() const {
  size_t bytes = objects_.capacity() * sizeof(Object);
  for (const Object& o : objects_) {
    bytes += o.elements.capacity() * sizeof(ElementId);
  }
  bytes += slot_of_.MemoryUsageBytes();
  bytes += deleted_.capacity() / 8;
  return bytes;
}

Status NaiveScan::IntegrityCheck(CheckLevel level) const {
  if (deleted_.size() != objects_.size() ||
      slot_of_.size() != objects_.size()) {
    return Status::Corruption("naive_scan directory shape mismatch");
  }
  if (level == CheckLevel::kQuick) return Status::OK();

  for (size_t i = 0; i < objects_.size(); ++i) {
    const Object& o = objects_[i];
    const uint32_t* slot = slot_of_.find(o.id);
    if (slot == nullptr || *slot != i) {
      return Status::Corruption("naive_scan slot map broken");
    }
    if (o.interval.st > o.interval.end) {
      return Status::Corruption("naive_scan object has inverted interval");
    }
    // ContainsAll merges over the sorted, duplicate-free description.
    for (size_t k = 1; k < o.elements.size(); ++k) {
      if (o.elements[k] <= o.elements[k - 1]) {
        return Status::Corruption("naive_scan description not sorted");
      }
    }
  }
  return Status::OK();
}

Status NaiveScan::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionPayload);
  writer->WriteU64(objects_.size());
  for (size_t i = 0; i < objects_.size(); ++i) {
    const Object& o = objects_[i];
    writer->WriteU32(o.id);
    writer->WriteU64(o.interval.st);
    writer->WriteU64(o.interval.end);
    writer->WriteVector(o.elements);
    writer->WriteU8(deleted_[i] ? 1 : 0);
  }
  return writer->EndSection();
}

Status NaiveScan::LoadFrom(SnapshotReader* reader) {
  auto cursor = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(cursor.status());
  SectionCursor& cur = cursor.value();
  uint64_t count;
  IRHINT_RETURN_NOT_OK(cur.ReadU64(&count));
  if (count > cur.remaining() / 21) {
    // 21 = minimum bytes per object record; rejects absurd counts.
    return Status::Corruption("naive_scan snapshot object count out of "
                              "bounds");
  }
  objects_.clear();
  objects_.reserve(static_cast<size_t>(count));
  deleted_.clear();
  deleted_.reserve(static_cast<size_t>(count));
  slot_of_.clear();
  slot_of_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    Object o;
    uint8_t is_deleted;
    IRHINT_RETURN_NOT_OK(cur.ReadU32(&o.id));
    IRHINT_RETURN_NOT_OK(cur.ReadU64(&o.interval.st));
    IRHINT_RETURN_NOT_OK(cur.ReadU64(&o.interval.end));
    IRHINT_RETURN_NOT_OK(cur.ReadVector(&o.elements));
    IRHINT_RETURN_NOT_OK(cur.ReadU8(&is_deleted));
    slot_of_.insert_or_assign(o.id, static_cast<uint32_t>(objects_.size()));
    objects_.push_back(std::move(o));
    deleted_.push_back(is_deleted != 0);
  }
  return Status::OK();
}

}  // namespace irhint

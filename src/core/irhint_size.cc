#include "core/irhint_size.h"

#include <algorithm>
#include <limits>

#include "common/checked_math.h"
#include "hint/cost_model.h"

namespace irhint {

template <typename Fn>
void IrHintSize::ForAssignments(const Interval& interval, Fn&& fn) {
  uint64_t first, last;
  mapper_.CellSpan(interval, &first, &last);
  AssignToPartitions(m_, first, last, [&](const PartitionRef& ref) {
    const bool ends_inside = (last >> (m_ - ref.level)) == ref.index;
    const SubdivRole role = ref.original ? (ends_inside ? kOin : kOaft)
                                         : (ends_inside ? kRin : kRaft);
    fn(ref, role);
  });
}

void IrHintSize::SortedInsert(FlatArray<Posting>* entries, SubdivRole role,
                              const Posting& posting) {
  // Beneficial sorting: O_in/O_aft ascending by start, R_in descending by
  // end, R_aft unsorted (no comparisons ever reach it). The search runs on
  // the read-only span; insert() materializes a mapped view if needed.
  const std::span<const Posting> view = entries->span();
  size_t pos;
  switch (role) {
    case kOin:
    case kOaft:
      pos = static_cast<size_t>(
          std::upper_bound(view.begin(), view.end(), posting,
                           [](const Posting& a, const Posting& b) {
                             return a.st < b.st;
                           }) -
          view.begin());
      break;
    case kRin:
      pos = static_cast<size_t>(
          std::upper_bound(view.begin(), view.end(), posting,
                           [](const Posting& a, const Posting& b) {
                             return a.end > b.end;
                           }) -
          view.begin());
      break;
    case kRaft:
    default:
      pos = view.size();
      break;
  }
  entries->insert(pos, posting);
}

void IrHintSize::ScanIntervals(const FlatArray<Posting>& entries,
                               SubdivRole role, CheckMode mode,
                               const Interval& q,
                               std::vector<ObjectId>* candidates) {
  const size_t n = entries.size();
  switch (mode) {
    case CheckMode::kNone:
      for (size_t i = 0; i < n; ++i) {
        if (entries[i].id != kTombstoneId) candidates->push_back(entries[i].id);
      }
      break;
    case CheckMode::kStartOnly:  // i.end >= q.st
      if (role == kRin) {
        for (size_t i = 0; i < n && entries[i].end >= q.st; ++i) {
          if (entries[i].id != kTombstoneId) {
            candidates->push_back(entries[i].id);
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (entries[i].end >= q.st && entries[i].id != kTombstoneId) {
            candidates->push_back(entries[i].id);
          }
        }
      }
      break;
    case CheckMode::kEndOnly:  // i.st <= q.end
      if (role == kOin || role == kOaft) {
        for (size_t i = 0; i < n && entries[i].st <= q.end; ++i) {
          if (entries[i].id != kTombstoneId) {
            candidates->push_back(entries[i].id);
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (entries[i].st <= q.end && entries[i].id != kTombstoneId) {
            candidates->push_back(entries[i].id);
          }
        }
      }
      break;
    case CheckMode::kBoth:
      if (role == kOin || role == kOaft) {
        for (size_t i = 0; i < n && entries[i].st <= q.end; ++i) {
          if (entries[i].end >= q.st && entries[i].id != kTombstoneId) {
            candidates->push_back(entries[i].id);
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (entries[i].st <= q.end && entries[i].end >= q.st &&
              entries[i].id != kTombstoneId) {
            candidates->push_back(entries[i].id);
          }
        }
      }
      break;
  }
}

Status IrHintSize::Build(const Corpus& corpus) {
  if (corpus.domain_end() >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  int m = options_.num_bits;
  if (m < 0) {
    std::vector<IntervalRecord> records;
    records.reserve(corpus.size());
    for (const Object& o : corpus.objects()) {
      records.push_back(IntervalRecord{o.id, o.interval});
    }
    // The size variant's per-division probe (one interval scan feeding
    // merge intersections) is cheaper than the performance variant's
    // multi-list tIF probe but still heavier than plain HINT's.
    CostModelOptions model;
    model.partition_probe_cost = 32.0;
    m = ChooseHintBits(records, corpus.domain_end(), model);
  }
  if (m > 30) return Status::InvalidArgument("num_bits must be <= 30");
  m_ = m;
  mapper_ = DomainMapper(corpus.domain_end(), m_);
  levels_.Init(m_);
  frequencies_.assign(corpus.dictionary().frequencies().begin(),
                      corpus.dictionary().frequencies().end());
  built_ = true;
  for (const Object& o : corpus.objects()) {
    if (o.interval.end > corpus.domain_end()) {
      return Status::OutOfDomain("interval exceeds declared domain");
    }
    if (o.interval.st > o.interval.end) {
      return Status::InvalidArgument("interval start exceeds end");
    }
    // Bulk path: append unsorted (sorted once below) and fill the deltas of
    // the id indexes (compacted once below).
    const Posting posting{o.id, static_cast<StoredTime>(o.interval.st),
                          static_cast<StoredTime>(o.interval.end)};
    ForAssignments(o.interval, [&](const PartitionRef& ref, SubdivRole role) {
      Partition& part = levels_.FindOrCreate(ref.level, ref.index);
      part.intervals[role].push_back(posting);
      if (role == kOin || role == kOaft) {
        part.originals_index.Add(o.id, o.elements);
      } else {
        part.replicas_index.Add(o.id, o.elements);
      }
    });
  }
  levels_.ForEachMutable([](int, uint64_t, Partition& part) {
    // Beneficial sorting per subdivision (R_aft needs no order).
    const auto sort_with = [](FlatArray<Posting>& list, auto cmp) {
      std::span<Posting> s = list.MutableSpan();
      std::sort(s.begin(), s.end(), cmp);
    };
    sort_with(part.intervals[kOin],
              [](const Posting& a, const Posting& b) { return a.st < b.st; });
    sort_with(part.intervals[kOaft],
              [](const Posting& a, const Posting& b) { return a.st < b.st; });
    sort_with(part.intervals[kRin],
              [](const Posting& a, const Posting& b) { return a.end > b.end; });
    for (FlatArray<Posting>& list : part.intervals) list.shrink_to_fit();
    part.originals_index.Finalize();
    part.replicas_index.Finalize();
  });
  return Status::OK();
}

Status IrHintSize::Insert(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  if (object.interval.st > object.interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (object.interval.end >=
      std::numeric_limits<StoredTime>::max()) {
    return Status::OutOfDomain("interval exceeds 32-bit stored endpoints");
  }
  if (object.interval.end > mapper_.domain_end()) {
    overflow_.push_back(object);
    std::sort(overflow_.back().elements.begin(),
              overflow_.back().elements.end());
    for (ElementId e : object.elements) {
      // GrowToFit widens before the increment; the unchecked `e + 1`
      // wraps to 0 at the max ElementId (the PR 4 bug class).
      if (e >= frequencies_.size()) {
        frequencies_.resize(GrowToFit(e), 0);
      }
      ++frequencies_[e];
    }
    return Status::OK();
  }
  const Posting posting{object.id,
                        static_cast<StoredTime>(object.interval.st),
                        static_cast<StoredTime>(object.interval.end)};
  ForAssignments(object.interval,
                 [&](const PartitionRef& ref, SubdivRole role) {
                   Partition& part =
                       levels_.FindOrCreate(ref.level, ref.index);
                   SortedInsert(&part.intervals[role], role, posting);
                   if (role == kOin || role == kOaft) {
                     part.originals_index.Add(object.id, object.elements);
                   } else {
                     part.replicas_index.Add(object.id, object.elements);
                   }
                 });
  for (ElementId e : object.elements) {
    if (e >= frequencies_.size()) {
      frequencies_.resize(GrowToFit(e), 0);
    }
    ++frequencies_[e];
  }
  return Status::OK();
}

Status IrHintSize::Erase(const Object& object) {
  if (!built_) return Status::InvalidArgument("index not built");
  if (object.interval.end > mapper_.domain_end()) {
    for (Object& o : overflow_) {
      if (o.id == object.id) {
        o.id = kTombstoneId;
        for (ElementId e : object.elements) {
          if (e < frequencies_.size() && frequencies_[e] > 0) {
            --frequencies_[e];
          }
        }
        return Status::OK();
      }
    }
    return Status::NotFound("object not present");
  }
  size_t tombstoned = 0;
  ForAssignments(object.interval,
                 [&](const PartitionRef& ref, SubdivRole role) {
                   Partition* part = levels_.Find(ref.level, ref.index);
                   if (part == nullptr) return;
                   FlatArray<Posting>& list = part->intervals[role];
                   for (size_t i = 0; i < list.size(); ++i) {
                     if (list[i].id == object.id) {
                       // Materialize only on a hit so misses leave mapped
                       // subdivisions untouched.
                       list.MutableData()[i].id = kTombstoneId;
                       ++tombstoned;
                       break;
                     }
                   }
                   DivisionIdIndex& index = (role == kOin || role == kOaft)
                                                ? part->originals_index
                                                : part->replicas_index;
                   index.Tombstone(object.id, object.elements);
                 });
  if (tombstoned == 0) return Status::NotFound("object not present");
  for (ElementId e : object.elements) {
    if (e < frequencies_.size() && frequencies_[e] > 0) --frequencies_[e];
  }
  return Status::OK();
}

void IrHintSize::Query(const irhint::Query& query, std::vector<ObjectId>* out) const {
  out->clear();
  if (!built_ || query.elements.empty()) return;
  if (query.interval.st > query.interval.end) return;

  std::vector<ElementId> elements = query.elements;
  std::sort(elements.begin(), elements.end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });

  std::vector<ObjectId> candidates;
  DivisionQueryScratch scratch;
  scratch.count = counters_.enabled();
  if (query.interval.st <= mapper_.domain_end()) {
  TraversalState state(m_, mapper_.Cell(query.interval.st),
                       mapper_.Cell(query.interval.end));
  for (int level = m_; level >= 0; --level) {
    const LevelPlan plan = state.PlanLevel(level);
    levels_.ForRange(
        level, plan.f, plan.l, [&](uint64_t j, const Partition& part) {
          CheckMode originals_mode;
          bool scan_replicas = false;
          CheckMode replicas_mode = CheckMode::kNone;
          if (j == plan.f) {
            originals_mode = plan.first_originals;
            scan_replicas = true;
            replicas_mode = plan.first_replicas;
          } else if (j == plan.l) {
            originals_mode = plan.last_originals;
          } else {
            originals_mode = CheckMode::kNone;
          }

          // Step 1 (range query) + sort + step 2 (merge intersections),
          // per division — Algorithm 6. Divisions requiring no temporal
          // checks skip step 1 entirely: the candidate set is the whole
          // division, so the answer is the intersection of the element
          // lists themselves.
          if (originals_mode == CheckMode::kNone) {
            part.originals_index.IntersectLists(elements, &scratch, out);
          } else {
            const auto [in_mode, aft_mode] =
                SplitOriginalsMode(originals_mode);
            candidates.clear();
            ScanIntervals(part.intervals[kOin], kOin, in_mode,
                          query.interval, &candidates);
            ScanIntervals(part.intervals[kOaft], kOaft, aft_mode,
                          query.interval, &candidates);
            if (scratch.count) {
              scratch.counters.postings_scanned +=
                  part.intervals[kOin].size() + part.intervals[kOaft].size();
            }
            if (!candidates.empty()) {
              std::sort(candidates.begin(), candidates.end());
              part.originals_index.Intersect(candidates, elements, &scratch,
                                             out);
            }
          }
          if (scan_replicas) {
            if (replicas_mode == CheckMode::kNone) {
              part.replicas_index.IntersectLists(elements, &scratch, out);
            } else {
              const auto [rin_mode, raft_mode] =
                  SplitReplicasMode(replicas_mode);
              candidates.clear();
              ScanIntervals(part.intervals[kRin], kRin, rin_mode,
                            query.interval, &candidates);
              ScanIntervals(part.intervals[kRaft], kRaft, raft_mode,
                            query.interval, &candidates);
              if (scratch.count) {
                scratch.counters.postings_scanned +=
                    part.intervals[kRin].size() + part.intervals[kRaft].size();
              }
              if (!candidates.empty()) {
                std::sort(candidates.begin(), candidates.end());
                part.replicas_index.Intersect(candidates, elements, &scratch,
                                              out);
              }
            }
          }
        });
    state.Descend(level);
  }
  }

  // Overflow objects: exhaustive check.
  if (!overflow_.empty()) {
    std::vector<ElementId> by_id = query.elements;
    std::sort(by_id.begin(), by_id.end());
    for (const Object& o : overflow_) {
      if (o.id != kTombstoneId && Overlaps(o.interval, query.interval) &&
          o.ContainsAll(by_id)) {
        out->push_back(o.id);
      }
    }
    scratch.counters.candidates_verified += overflow_.size();
  }
  counters_.Accumulate(scratch.counters);
}

size_t IrHintSize::MemoryUsageBytes() const {
  size_t bytes = levels_.DirectoryBytes();
  bytes += overflow_.capacity() * sizeof(Object);
  for (const Object& o : overflow_) {
    bytes += o.elements.capacity() * sizeof(ElementId);
  }
  bytes += frequencies_.capacity() * sizeof(uint64_t);
  levels_.ForEach([&bytes](int, uint64_t, const Partition& part) {
    for (const FlatArray<Posting>& list : part.intervals) {
      bytes += list.MemoryUsageBytes();
    }
    bytes += part.originals_index.MemoryUsageBytes();
    bytes += part.replicas_index.MemoryUsageBytes();
  });
  return bytes;
}

Status IrHintSize::IntegrityCheck(CheckLevel level) const {
  if (!built_) {
    if (levels_.num_levels() != 0 || !overflow_.empty()) {
      return Status::Corruption("irhint-size unbuilt index holds data");
    }
    return Status::OK();
  }
  if (m_ < 0 || m_ > 30) {
    return Status::Corruption("irhint-size m out of range");
  }
  if (levels_.num_levels() != m_ + 1) {
    return Status::Corruption("irhint-size level directory shape mismatch");
  }
  const uint64_t element_limit =
      frequencies_.empty() ? DivisionPostings<IdEntry>::kNoElementLimit
                           : static_cast<uint64_t>(frequencies_.size());
  for (int lvl = 0; lvl <= m_; ++lvl) {
    const std::vector<uint64_t>& keys = levels_.keys(lvl);
    if (keys.size() != levels_.parts(lvl).size()) {
      return Status::Corruption("irhint-size partition directory mismatch");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i > 0 && keys[i] <= keys[i - 1]) {
        return Status::Corruption("irhint-size partition keys not sorted");
      }
      if ((keys[i] >> lvl) != 0) {
        return Status::Corruption("irhint-size partition key out of level "
                                  "range");
      }
    }
  }

  Status status = Status::OK();
  // Live id-index entries of the original divisions per element; reconciled
  // against frequencies_ below.
  std::vector<uint64_t> census(frequencies_.size(), 0);
  std::vector<ObjectId> original_ids;
  std::vector<ObjectId> replica_ids;
  levels_.ForEach([&](int lvl, uint64_t key, const Partition& part) {
    if (!status.ok()) return;
    status = part.originals_index.CheckStructure(level, element_limit);
    if (!status.ok()) return;
    status = part.replicas_index.CheckStructure(level, element_limit);
    if (!status.ok()) return;
    if (level == CheckLevel::kQuick) return;

    // Interval stores: beneficial sorting, in-domain endpoints, and the
    // canonical HINT assignment (tombstones keep their endpoints, so the
    // assignment must hold for them too).
    original_ids.clear();
    replica_ids.clear();
    for (int role = 0; role < 4; ++role) {
      const FlatArray<Posting>& list = part.intervals[role];
      for (size_t i = 0; i < list.size(); ++i) {
        const Posting& p = list[i];
        if (p.st > p.end) {
          status = Status::Corruption("irhint-size interval entry inverted");
          return;
        }
        if (p.end > mapper_.domain_end()) {
          status = Status::Corruption("irhint-size interval entry exceeds "
                                      "declared domain");
          return;
        }
        if (i > 0) {
          if ((role == kOin || role == kOaft) && p.st < list[i - 1].st) {
            status = Status::Corruption("irhint-size O-division not "
                                        "start-sorted");
            return;
          }
          if (role == kRin && p.end > list[i - 1].end) {
            status = Status::Corruption("irhint-size R_in not end-sorted "
                                        "descending");
            return;
          }
        }
        uint64_t first, last;
        mapper_.CellSpan(Interval(p.st, p.end), &first, &last);
        bool matched = false;
        AssignToPartitions(m_, first, last, [&](const PartitionRef& ref) {
          if (ref.level != lvl || ref.index != key) return;
          const bool ends_inside = (last >> (m_ - ref.level)) == ref.index;
          const int expected = ref.original ? (ends_inside ? kOin : kOaft)
                                            : (ends_inside ? kRin : kRaft);
          if (expected == role) matched = true;
        });
        if (!matched) {
          status = Status::Corruption("irhint-size interval stored in "
                                      "non-canonical division");
          return;
        }
        if (p.id == kTombstoneId) continue;
        ((role == kOin || role == kOaft) ? original_ids : replica_ids)
            .push_back(p.id);
      }
    }
    std::sort(original_ids.begin(), original_ids.end());
    std::sort(replica_ids.begin(), replica_ids.end());

    // Referential integrity: every live id-index entry must refer to a
    // live interval of the same division (a dangling id would surface
    // phantom results under CheckMode::kNone probes).
    const auto check_index = [&](const DivisionIdIndex& index,
                                 const std::vector<ObjectId>& ids,
                                 bool count, const char* what) {
      return index.ForEachEntry([&](ElementId e, const IdEntry& entry) {
        if (entry.id == kTombstoneId) return Status::OK();
        if (!std::binary_search(ids.begin(), ids.end(), entry.id)) {
          return Status::Corruption(what);
        }
        if (count && e < census.size()) ++census[e];
        return Status::OK();
      });
    };
    status = check_index(part.originals_index, original_ids, true,
                         "irhint-size originals id entry dangles");
    if (!status.ok()) return;
    status = check_index(part.replicas_index, replica_ids, false,
                         "irhint-size replicas id entry dangles");
  });
  IRHINT_RETURN_NOT_OK(status);
  if (level == CheckLevel::kQuick) return Status::OK();

  for (const Object& o : overflow_) {
    if (o.interval.st > o.interval.end) {
      return Status::Corruption("irhint-size overflow object has inverted "
                                "interval");
    }
    if (o.interval.end <= mapper_.domain_end()) {
      return Status::Corruption("irhint-size overflow object fits the "
                                "indexed domain");
    }
    for (size_t k = 1; k < o.elements.size(); ++k) {
      if (o.elements[k] <= o.elements[k - 1]) {
        return Status::Corruption("irhint-size overflow description not "
                                  "sorted");
      }
    }
    if (o.id == kTombstoneId) continue;
    for (ElementId e : o.elements) {
      if (e < census.size()) ++census[e];
    }
  }
  for (size_t e = 0; e < frequencies_.size(); ++e) {
    if (census[e] != frequencies_[e]) {
      return Status::Corruption("irhint-size frequency table out of sync "
                                "with live postings");
    }
  }
  return Status::OK();
}

Status IrHintSize::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionMeta);
  writer->WriteI32(options_.num_bits);
  writer->WriteI32(m_);
  writer->WriteU64(mapper_.domain_end());
  writer->WriteU8(built_ ? 1 : 0);
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionPayload);
  for (int level = 0; level < levels_.num_levels(); ++level) {
    writer->WriteVector(levels_.keys(level));
    for (const Partition& part : levels_.parts(level)) {
      for (const FlatArray<Posting>& list : part.intervals) {
        writer->WriteFlatArray(list);
      }
      part.originals_index.SaveTo(writer);
      part.replicas_index.SaveTo(writer);
    }
  }
  IRHINT_RETURN_NOT_OK(writer->EndSection());

  writer->BeginSection(kSectionAux);
  writer->WriteU64(overflow_.size());
  for (const Object& o : overflow_) {
    writer->WriteU32(o.id);
    writer->WriteU64(o.interval.st);
    writer->WriteU64(o.interval.end);
    writer->WriteVector(o.elements);
  }
  writer->WriteVector(frequencies_);
  return writer->EndSection();
}

Status IrHintSize::LoadFrom(SnapshotReader* reader) {
  auto meta = reader->OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint64_t domain_end = 0;
  uint8_t built = 0;
  IRHINT_RETURN_NOT_OK(meta->ReadI32(&options_.num_bits));
  IRHINT_RETURN_NOT_OK(meta->ReadI32(&m_));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&domain_end));
  IRHINT_RETURN_NOT_OK(meta->ReadU8(&built));
  if (m_ < 0 || m_ > 30) {
    return Status::Corruption("irhint snapshot has invalid m");
  }
  mapper_ = DomainMapper(domain_end, m_);
  built_ = built != 0;

  auto payload = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(payload.status());
  levels_.Init(m_);
  for (int level = 0; level <= m_; ++level) {
    std::vector<uint64_t> keys;
    IRHINT_RETURN_NOT_OK(payload->ReadVector(&keys));
    std::vector<Partition> parts(keys.size());
    for (Partition& part : parts) {
      for (FlatArray<Posting>& list : part.intervals) {
        IRHINT_RETURN_NOT_OK(payload->ReadFlatArray(&list));
      }
      IRHINT_RETURN_NOT_OK(part.originals_index.LoadFrom(&payload.value()));
      IRHINT_RETURN_NOT_OK(part.replicas_index.LoadFrom(&payload.value()));
    }
    levels_.RestoreLevel(level, std::move(keys), std::move(parts));
  }

  auto aux = reader->OpenSection(kSectionAux);
  IRHINT_RETURN_NOT_OK(aux.status());
  uint64_t num_overflow;
  IRHINT_RETURN_NOT_OK(aux->ReadU64(&num_overflow));
  if (num_overflow > aux->remaining() / 28) {
    // 28 = minimum bytes per overflow object record.
    return Status::Corruption("irhint snapshot overflow count out of bounds");
  }
  overflow_.clear();
  overflow_.reserve(static_cast<size_t>(num_overflow));
  for (uint64_t i = 0; i < num_overflow; ++i) {
    Object o;
    IRHINT_RETURN_NOT_OK(aux->ReadU32(&o.id));
    IRHINT_RETURN_NOT_OK(aux->ReadU64(&o.interval.st));
    IRHINT_RETURN_NOT_OK(aux->ReadU64(&o.interval.end));
    IRHINT_RETURN_NOT_OK(aux->ReadVector(&o.elements));
    overflow_.push_back(std::move(o));
  }
  IRHINT_RETURN_NOT_OK(aux->ReadVector(&frequencies_));
  return Status::OK();
}

}  // namespace irhint

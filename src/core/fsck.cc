#include "core/fsck.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "data/serialize.h"
#include "storage/index_io.h"
#include "storage/snapshot_format.h"
#include "wal/recovery.h"
#include "wal/wal_env.h"
#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace irhint {

Status CheckSnapshotFile(const std::string& path, CheckLevel level,
                         const SnapshotReadOptions& options,
                         FsckReport* report) {
  FsckReport local;
  FsckReport* rep = report != nullptr ? report : &local;

  SnapshotReader reader;
  IRHINT_RETURN_NOT_OK(reader.Open(path, options));
  rep->snapshot_kind = reader.kind();
  for (const SectionInfo& info : reader.sections()) {
    IRHINT_RETURN_NOT_OK(reader.VerifySection(info));
    ++rep->sections_verified;
  }
  if (level == CheckLevel::kQuick) return Status::OK();

  if (reader.kind() == static_cast<uint32_t>(SnapshotKind::kCorpus)) {
    // LoadCorpus revalidates object intervals, dictionary ranges and
    // duplicate-free descriptions; a corpus that loads is structurally
    // sound.
    auto corpus = LoadCorpus(path);
    return corpus.status();
  }

  // Checkpoint snapshots carry a WAL-state section; it must decode even
  // though this call cannot cross-check it against a log (CheckWalDirectory
  // does that).
  if (reader.HasSection(kSectionWalState)) {
    auto cursor = reader.OpenSection(kSectionWalState);
    IRHINT_RETURN_NOT_OK(cursor.status());
    uint64_t wal_lsn;
    uint64_t next_object_id;
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&wal_lsn));
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&next_object_id));
  }

  auto loaded = LoadIndexSnapshot(path, options);
  IRHINT_RETURN_NOT_OK(loaded.status());
  IRHINT_RETURN_NOT_OK(loaded->index->IntegrityCheck(CheckLevel::kDeep));
  ++rep->indexes_deep_checked;
  return Status::OK();
}

Status CheckWalDirectory(const std::string& dir, CheckLevel level,
                         WalEnv* env, FsckReport* report) {
  if (env == nullptr) env = DefaultWalEnv();
  FsckReport local;
  FsckReport* rep = report != nullptr ? report : &local;

  auto segments = ListWalSegments(env, dir);
  IRHINT_RETURN_NOT_OK(segments.status());
  auto checkpoints = ListCheckpointLsns(env, dir);
  IRHINT_RETURN_NOT_OK(checkpoints.status());

  // Pass 1: decode every segment. Sealed segments were fully fsynced by
  // their rotate handoff, so any damage there is corruption; only the live
  // (final) segment may carry a torn tail. LSNs must stay dense across the
  // retained log (records never move between segments).
  const std::vector<uint64_t>& seqs = segments.value();
  std::vector<std::pair<uint64_t, uint64_t>> insert_lsn_ids;
  uint64_t prev_lsn = 0;
  bool have_lsn = false;
  for (size_t i = 0; i < seqs.size(); ++i) {
    const std::string path = WalPathJoin(dir, WalSegmentFileName(seqs[i]));
    auto contents = ReadWalSegment(env, path);
    IRHINT_RETURN_NOT_OK(contents.status());
    const WalSegmentContents& seg = contents.value();
    const bool final_segment = i + 1 == seqs.size();
    if (!seg.clean) {
      if (!final_segment) {
        return Status::Corruption("sealed WAL segment damaged (" + path +
                                  "): " + seg.tail_status.ToString());
      }
      rep->torn_tail_bytes += seg.file_bytes - seg.valid_bytes;
    }
    if (!final_segment) {
      if (seg.records.empty() || !seg.ends_with_rotate) {
        return Status::Corruption("sealed WAL segment lacks its rotate "
                                  "handoff: " + path);
      }
      if (seg.records.back().next_seq != seqs[i + 1]) {
        return Status::Corruption("WAL rotate chain broken after " + path);
      }
    }
    for (const WalRecord& rec : seg.records) {
      if (have_lsn && rec.lsn != prev_lsn + 1) {
        return Status::Corruption("WAL LSNs not dense in " + path);
      }
      prev_lsn = rec.lsn;
      have_lsn = true;
      if (rec.type == WalRecordType::kInsert) {
        insert_lsn_ids.emplace_back(rec.lsn, rec.object.id);
      }
      ++rep->records_decoded;
    }
    ++rep->segments_scanned;
  }

  // Pass 2: checkpoint snapshots. Quick verifies their framing; deep loads
  // each one, cross-checks the recorded LSN against the file name and the
  // id watermark against every logged insert the snapshot claims to cover,
  // and audits the loaded index.
  for (uint64_t lsn : checkpoints.value()) {
    const std::string path = WalPathJoin(dir, CheckpointFileName(lsn));
    if (level == CheckLevel::kQuick) {
      IRHINT_RETURN_NOT_OK(
          CheckSnapshotFile(path, CheckLevel::kQuick, {}, rep));
      ++rep->checkpoints_checked;
      continue;
    }
    auto info = LoadIndexCheckpoint(path);
    IRHINT_RETURN_NOT_OK(info.status());
    if (info->wal_lsn != lsn) {
      return Status::Corruption("checkpoint file name disagrees with its "
                                "recorded LSN: " + path);
    }
    uint64_t max_insert_id = 0;
    bool any_covered = false;
    for (const auto& [record_lsn, id] : insert_lsn_ids) {
      if (record_lsn <= lsn) {
        max_insert_id = std::max(max_insert_id, id);
        any_covered = true;
      }
    }
    if (any_covered && info->next_object_id <= max_insert_id) {
      // A future re-ingest would hand out an id the log already used.
      return Status::Corruption("checkpoint id watermark below logged "
                                "insert ids: " + path);
    }
    IRHINT_RETURN_NOT_OK(
        info->loaded.index->IntegrityCheck(CheckLevel::kDeep));
    ++rep->indexes_deep_checked;
    ++rep->checkpoints_checked;
  }
  if (level == CheckLevel::kQuick) return Status::OK();

  // Pass 3: end-to-end recovery (read-only: torn-tail truncation is
  // suppressed), then a deep audit of the recovered index.
  RecoveryOptions options;
  options.truncate_torn_tail = false;
  RecoveryManager manager(env, dir);
  auto result = manager.Recover(options);
  IRHINT_RETURN_NOT_OK(result.status());
  IRHINT_RETURN_NOT_OK(result->index->IntegrityCheck(CheckLevel::kDeep));
  ++rep->indexes_deep_checked;
  return Status::OK();
}

}  // namespace irhint

// Structural integrity checking: the CheckLevel knob shared by
// TemporalIrIndex::IntegrityCheck implementations and the fsck layer
// (core/fsck.h, tools/irhint_fsck). Lives in its own header so that
// temporal_ir_index.h and the per-index headers can name it without
// pulling in the fsck machinery.
//
// The invariant catalog each level covers, per index kind, is documented
// in DESIGN.md §9 ("Integrity model").

#ifndef IRHINT_CORE_INTEGRITY_H_
#define IRHINT_CORE_INTEGRITY_H_

namespace irhint {

/// \brief Test-only backdoor for seeding structural corruption. Defined by
/// tests/integrity_test.cc; befriended by the structures whose invariants
/// IntegrityCheck guards so negative tests can violate them in place.
struct IntegrityTestPeer;

/// \brief How deep IntegrityCheck digs.
enum class CheckLevel {
  /// O(metadata): directory shapes, parallel-array sizes, count
  /// bookkeeping, option ranges. Cheap enough to run after every load.
  kQuick,
  /// O(index): every stored entry re-validated — canonical HINT partition
  /// assignment re-derived per interval, postings sortedness/dedup,
  /// cross-structure referential integrity, derived arrays recomputed.
  kDeep,
};

}  // namespace irhint

#endif  // IRHINT_CORE_INTEGRITY_H_

#include "core/factory.h"

#include "core/irhint_perf.h"
#include "core/irhint_size.h"
#include "core/naive_scan.h"
#include "ir/tif.h"
#include "irfirst/tif_hint.h"
#include "rank/scored_index.h"
#include "irfirst/tif_hint_slicing.h"
#include "irfirst/tif_sharding.h"
#include "irfirst/tif_slicing.h"

namespace irhint {

std::unique_ptr<TemporalIrIndex> CreateIndex(IndexKind kind,
                                             const IndexConfig& config) {
  switch (kind) {
    case IndexKind::kNaiveScan:
      return std::make_unique<NaiveScan>();
    case IndexKind::kTif:
      return std::make_unique<TemporalInvertedFile>();
    case IndexKind::kTifSlicing: {
      TifSlicingOptions options;
      options.num_slices = config.num_slices;
      return std::make_unique<TifSlicing>(options);
    }
    case IndexKind::kTifSharding: {
      TifShardingOptions options;
      options.max_shards_per_list = config.max_shards_per_list;
      return std::make_unique<TifSharding>(options);
    }
    case IndexKind::kTifHintBinarySearch: {
      TifHintOptions options;
      options.num_bits = config.tif_hint_bits_bs;
      options.mode = TifHintMode::kBinarySearch;
      return std::make_unique<TifHint>(options);
    }
    case IndexKind::kTifHintMergeSort: {
      TifHintOptions options;
      options.num_bits = config.tif_hint_bits_ms;
      options.mode = TifHintMode::kMergeSort;
      return std::make_unique<TifHint>(options);
    }
    case IndexKind::kTifHintSlicing: {
      TifHintSlicingOptions options;
      options.num_bits = config.tif_hint_bits_ms;
      options.num_slices = config.num_slices;
      return std::make_unique<TifHintSlicing>(options);
    }
    case IndexKind::kIrHintPerf: {
      IrHintOptions options;
      options.num_bits = config.irhint_bits;
      return std::make_unique<IrHintPerf>(options);
    }
    case IndexKind::kIrHintSize: {
      IrHintSizeOptions options;
      options.num_bits = config.irhint_bits;
      return std::make_unique<IrHintSize>(options);
    }
    case IndexKind::kScoredTif: {
      ScoredIndexOptions options;
      options.base = IndexKind::kTif;
      // tIF keeps one flat postings store; divisions are a HINT notion.
      options.divisions = 1;
      return std::make_unique<ScoredIndex>(options, config);
    }
    case IndexKind::kScoredIrHint: {
      ScoredIndexOptions options;
      options.base = IndexKind::kIrHintPerf;
      options.divisions = config.rank_divisions;
      return std::make_unique<ScoredIndex>(options, config);
    }
  }
  return nullptr;
}

std::string_view IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kNaiveScan: return "NaiveScan";
    case IndexKind::kTif: return "tIF";
    case IndexKind::kTifSlicing: return "tIF+Slicing";
    case IndexKind::kTifSharding: return "tIF+Sharding";
    case IndexKind::kTifHintBinarySearch: return "tIF+HINT(bs)";
    case IndexKind::kTifHintMergeSort: return "tIF+HINT(ms)";
    case IndexKind::kTifHintSlicing: return "tIF+HINT+Slicing";
    case IndexKind::kIrHintPerf: return "irHINT-perf";
    case IndexKind::kIrHintSize: return "irHINT-size";
    case IndexKind::kScoredTif: return "scored-tIF";
    case IndexKind::kScoredIrHint: return "scored-irHINT";
  }
  return "unknown";
}

std::vector<IndexKind> ComparisonIndexKinds() {
  return {IndexKind::kTifSlicing, IndexKind::kTifSharding,
          IndexKind::kTifHintSlicing, IndexKind::kIrHintPerf,
          IndexKind::kIrHintSize};
}

std::vector<IndexKind> AllIndexKinds() {
  return {IndexKind::kTifSlicing,    IndexKind::kTifSharding,
          IndexKind::kTifHintBinarySearch, IndexKind::kTifHintMergeSort,
          IndexKind::kTifHintSlicing, IndexKind::kIrHintPerf,
          IndexKind::kIrHintSize};
}

std::vector<IndexKind> ScoredIndexKinds() {
  return {IndexKind::kScoredTif, IndexKind::kScoredIrHint};
}

bool KindSupportsTopK(IndexKind kind) {
  return kind == IndexKind::kScoredTif || kind == IndexKind::kScoredIrHint;
}

}  // namespace irhint

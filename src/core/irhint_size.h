// irHINT (size variant) — Section 4.2, Algorithm 6.
//
// Like the performance variant, a single HINT hierarchy indexes the time
// domain; but each division decouples the two object attributes into two
// structures: (1) an interval store identical to plain HINT — subdivisions
// with beneficial temporal sorting, holding <id, t_st, t_end> once per
// object — and (2) an id-only inverted index mapping elements to the ids of
// the division's objects. Queries first run the mode-restricted interval
// scan of Algorithm 2 inside each relevant division to obtain temporal
// candidates, sort them by id, and then intersect them against the
// division's postings in merge fashion. Intervals are stored once per
// division instead of once per (element, division), which is where the
// space savings come from.

#ifndef IRHINT_CORE_IRHINT_SIZE_H_
#define IRHINT_CORE_IRHINT_SIZE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/contracts.h"
#include "core/temporal_ir_index.h"
#include "hint/domain.h"
#include "hint/sparse_levels.h"
#include "hint/traversal.h"
#include "ir/division_index.h"
#include "ir/postings.h"
#include "storage/flat_array.h"

namespace irhint {

struct IrHintSizeOptions {
  /// Number of bits m; -1 selects m with the HINT cost model.
  int num_bits = -1;
};

/// \brief irHINT, focus-on-index-size variant.
class IrHintSize : public CountingTemporalIrIndex {
 public:
  IrHintSize() = default;
  explicit IrHintSize(const IrHintSizeOptions& options) : options_(options) {}

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "irHINT-size"; }
  IndexKind Kind() const override { return IndexKind::kIrHintSize; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  int m() const { return m_; }
  uint64_t Frequency(ElementId e) const {
    return e < frequencies_.size() ? frequencies_[e] : 0;
  }

 private:
  friend struct IntegrityTestPeer;

  enum SubdivRole { kOin = 0, kOaft = 1, kRin = 2, kRaft = 3 };

  // Keepalive: the owning index's storage_keepalive_, one level up.
  struct IRHINT_KEEPALIVE_EXTERNAL Partition {
    // Interval store: one beneficial-sorted entry array per subdivision
    // (O_in/O_aft by ascending start, R_in by descending end). FlatArray so
    // a snapshot load can alias the mapped file without copying.
    FlatArray<Posting> intervals[4];
    // Id-only inverted indexes, one per division.
    DivisionIdIndex originals_index;
    DivisionIdIndex replicas_index;
  };

  template <typename Fn>
  void ForAssignments(const Interval& interval, Fn&& fn);

  // Scan one subdivision's interval store under `mode`, appending
  // qualifying live ids to candidates.
  static void ScanIntervals(const FlatArray<Posting>& entries,
                            SubdivRole role, CheckMode mode,
                            const Interval& q,
                            std::vector<ObjectId>* candidates);

  static void SortedInsert(FlatArray<Posting>* entries, SubdivRole role,
                           const Posting& posting);

  IrHintSizeOptions options_;
  int m_ = 0;
  DomainMapper mapper_;
  SparseLevels<Partition> levels_;
  // Objects extending past the declared domain (time-expanding extension).
  std::vector<Object> overflow_;
  std::vector<uint64_t> frequencies_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_CORE_IRHINT_SIZE_H_

// A TemporalIrIndex wrapper that makes live ingestion durable: every
// Insert/Erase is appended to a write-ahead log before it is applied, the
// index is rebuilt from the newest checkpoint snapshot plus log replay on
// Open(), and a background (or inline) checkpointer bounds replay time by
// snapshotting the index and garbage-collecting sealed log segments.

#ifndef IRHINT_CORE_DURABLE_INDEX_H_
#define IRHINT_CORE_DURABLE_INDEX_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_annotations.h"
#include "core/factory.h"
#include "core/temporal_ir_index.h"
#include "wal/recovery.h"
#include "wal/wal_writer.h"

namespace irhint {

struct DurableIndexOptions {
  /// Index kind to create on a fresh directory. When the directory already
  /// holds a checkpoint snapshot, the snapshot's recorded kind wins.
  IndexKind kind = IndexKind::kIrHintPerf;
  IndexConfig config;

  /// WAL durability policy and group-commit knobs (see wal/wal_writer.h).
  WalDurability durability = WalDurability::kBatch;
  uint64_t batch_bytes = 256 * 1024;
  double batch_interval_seconds = 0.02;

  /// Checkpoint once the live segment exceeds this many bytes; 0 disables
  /// automatic checkpointing (TriggerCheckpoint() still works).
  uint64_t checkpoint_bytes = 0;
  /// Run automatic checkpoints on a background thread. When false they run
  /// inline inside the Insert/Erase that crossed the threshold, which is
  /// deterministic (what the tests use) but stalls that update.
  bool background_checkpoint = true;
  /// Checkpoint snapshots to retain after GC (>= 1). Only the newest is
  /// recoverable from — older segments are deleted — but extras help
  /// post-mortems.
  uint32_t gc_keep_snapshots = 1;

  SnapshotReadOptions snapshot_read;
};

/// \brief Durable live index over a WAL directory.
///
/// Concurrency (DESIGN.md §10): Query()/Stats() take a shared lock on
/// "DurableIndex::state", updates and checkpoints an exclusive one, so
/// readers run concurrently with each other but not with writes
/// (single-writer model, Section 5.5). All methods are thread-safe. Lock
/// order: "DurableIndex::ckpt_serial" before "DurableIndex::state";
/// "DurableIndex::ckpt" is a leaf (never held across another
/// acquisition). The annotations below make the contracts compile-checked
/// by clang -Wthread-safety.
class DurableIndex : public TemporalIrIndex {
 public:
  /// \brief Recover (or create) the index in `wal_dir` and arm the log
  /// writer. `env` defaults to the POSIX environment; the crash-torture
  /// test passes a fault-injecting one.
  static StatusOr<std::unique_ptr<DurableIndex>> Open(
      const std::string& wal_dir, const DurableIndexOptions& options = {},
      WalEnv* env = nullptr);

  /// Stops the checkpointer and syncs the log (so a clean close loses
  /// nothing even under the kNone policy).
  ~DurableIndex() override;

  // -- TemporalIrIndex ------------------------------------------------------

  /// \brief Bulk-load a corpus through the log. Only valid on a fresh
  /// directory (no LSN assigned yet); recovery rebuilds the same state.
  Status Build(const Corpus& corpus) override;

  void Query(const irhint::Query& query,
             std::vector<ObjectId>* out) const override;
  Status TopKQuery(const irhint::Query& query, uint32_t k,
                   std::vector<ScoredHit>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::optional<QueryCounters> Stats() const override;
  void ResetStats() override;
  void EnableStats(bool enabled) override;
  std::string_view Name() const override { return name_; }
  IndexKind Kind() const override;

  /// Persistence is the WAL directory itself; snapshot the inner index via
  /// checkpoints, not SaveIndex.
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;

  /// \brief Audit the wrapped index plus the durability bookkeeping (id
  /// watermark, log-writer LSN monotonicity) under one shared lock.
  Status IntegrityCheck(CheckLevel level) const override;

  // -- Durability controls --------------------------------------------------

  /// \brief fsync everything appended so far, regardless of policy.
  Status Flush();

  /// \brief Run one checkpoint now, inline: rotate the log, snapshot the
  /// index, then garbage-collect sealed segments and old snapshots.
  Status TriggerCheckpoint();

  /// \brief Block until no automatic checkpoint is queued or running;
  /// returns the status of the last one that ran.
  Status WaitForCheckpoint();

  /// \brief LSN the next update will get.
  uint64_t next_lsn() const;
  /// \brief Highest LSN known durable.
  uint64_t last_synced_lsn() const;
  uint64_t wal_segment_seq() const;
  uint64_t wal_segment_bytes() const;
  /// \brief Smallest id the next insert may use.
  uint64_t next_object_id() const;

  /// \brief How Open() reconstructed the state (`index` member is null).
  const RecoveryResult& recovery_info() const { return recovery_info_; }

 private:
  friend struct IntegrityTestPeer;

  DurableIndex() = default;

  bool ShouldCheckpointLocked() const IRHINT_REQUIRES(mutex_);
  /// One full checkpoint cycle; serialized against concurrent triggers.
  Status RunCheckpoint() IRHINT_EXCLUDES(mutex_, ckpt_serial_mutex_);
  Status GarbageCollect(uint64_t live_seq, uint64_t keep_ckpt_lsn);
  void CheckpointThreadMain();

  // Set once inside Open() (under the state lock, before the index is
  // published) and immutable afterwards, hence lock-free to read.
  WalEnv* env_ = nullptr;               // unguarded: immutable after Open
  std::string dir_;                     // unguarded: immutable after Open
  DurableIndexOptions options_;         // unguarded: immutable after Open
  std::string name_;                    // unguarded: immutable after Open
  RecoveryResult recovery_info_;        // unguarded: immutable after Open

  /// Guards inner_, writer_ and the watermark (shared: queries; exclusive:
  /// updates). The WalWriter is single-threaded by construction — holding
  /// this lock exclusively is what makes that safe (PT_GUARDED_BY).
  mutable SharedMutex mutex_{"DurableIndex::state"};
  std::unique_ptr<TemporalIrIndex> inner_ IRHINT_GUARDED_BY(mutex_)
      IRHINT_PT_GUARDED_BY(mutex_);
  std::unique_ptr<WalWriter> writer_ IRHINT_GUARDED_BY(mutex_)
      IRHINT_PT_GUARDED_BY(mutex_);
  /// Smallest id the next insert may use. The inner indexes trust the
  /// strictly-increasing-id contract of Section 5.5 without checking it,
  /// so the durable layer enforces it (and persists it via checkpoints) —
  /// otherwise a re-ingest after recovery would insert duplicates.
  uint64_t next_object_id_ IRHINT_GUARDED_BY(mutex_) = 0;

  /// Checkpoints are serialized on ckpt_serial_mutex_, acquired strictly
  /// before mutex_; the trigger handshake lock ckpt_mutex_ is a leaf
  /// (never held while acquiring another lock).
  Mutex ckpt_serial_mutex_{"DurableIndex::ckpt_serial"};
  Mutex ckpt_mutex_{"DurableIndex::ckpt"};
  CondVar ckpt_cv_;
  bool ckpt_requested_ IRHINT_GUARDED_BY(ckpt_mutex_) = false;
  bool ckpt_running_ IRHINT_GUARDED_BY(ckpt_mutex_) = false;
  bool ckpt_stop_ IRHINT_GUARDED_BY(ckpt_mutex_) = false;
  Status last_checkpoint_status_ IRHINT_GUARDED_BY(ckpt_mutex_);
  std::thread ckpt_thread_;  // unguarded: Open starts it, dtor joins it
};

}  // namespace irhint

#endif  // IRHINT_CORE_DURABLE_INDEX_H_

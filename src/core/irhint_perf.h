// irHINT (performance variant) — the paper's headline contribution
// (Section 4.1, Algorithm 5).
//
// A single HINT hierarchy indexes the time domain; every partition
// subdivision (O_in / O_aft / R_in / R_aft) carries its own temporal
// inverted file over the objects assigned to it. A time-travel IR query is
// driven by HINT's bottom-up traversal: each relevant subdivision answers a
// containment query on its local inverted file under the temporal-check
// mode implied by the compfirst/complast state (both checks, start-only,
// end-only, or none). HINT's duplicate-avoidance rule guarantees the
// per-division outputs are disjoint, so no de-duplication step is needed.

#ifndef IRHINT_CORE_IRHINT_PERF_H_
#define IRHINT_CORE_IRHINT_PERF_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/temporal_ir_index.h"
#include "hint/domain.h"
#include "hint/sparse_levels.h"
#include "hint/traversal.h"
#include "ir/division_index.h"

namespace irhint {

struct IrHintOptions {
  /// Number of bits m. -1 selects m automatically with the HINT cost model
  /// (which the paper found effective for the time-first design).
  int num_bits = -1;
};

/// \brief irHINT, focus-on-performance variant.
class IrHintPerf : public CountingTemporalIrIndex {
 public:
  IrHintPerf() = default;
  explicit IrHintPerf(const IrHintOptions& options) : options_(options) {}

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "irHINT-perf"; }
  IndexKind Kind() const override { return IndexKind::kIrHintPerf; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  int m() const { return m_; }
  uint64_t Frequency(ElementId e) const {
    return e < frequencies_.size() ? frequencies_[e] : 0;
  }

 private:
  friend struct IntegrityTestPeer;

  struct Partition {
    DivisionTif subs[4];  // O_in, O_aft, R_in, R_aft
  };
  enum SubdivRole { kOin = 0, kOaft = 1, kRin = 2, kRaft = 3 };

  template <typename Fn>
  void ForAssignments(const Interval& interval, Fn&& fn);

  IrHintOptions options_;
  int m_ = 0;
  DomainMapper mapper_;
  SparseLevels<Partition> levels_;
  // Objects extending past the declared domain (time-expanding extension;
  // scanned exhaustively by queries, tombstoned in place).
  std::vector<Object> overflow_;
  std::vector<uint64_t> frequencies_;
  bool built_ = false;
};

}  // namespace irhint

#endif  // IRHINT_CORE_IRHINT_PERF_H_

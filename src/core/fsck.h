// Structural auditing ("fsck") for everything this library persists: index
// and corpus snapshot files, checkpoint snapshots, and whole WAL
// directories. One code path serves the irhint_fsck tool, snapshot_inspect
// --check, irhint_cli verification and the integrity tests (DESIGN.md §9).
//
// Contract: a damaged input of any shape yields a non-OK Status — never a
// crash, never a silent pass.

#ifndef IRHINT_CORE_FSCK_H_
#define IRHINT_CORE_FSCK_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/integrity.h"
#include "storage/snapshot_reader.h"

namespace irhint {

class WalEnv;

/// \brief What an audit covered (for tool output; zero-initialized fields
/// simply did not apply to the input).
struct FsckReport {
  /// Snapshot kind tag of the audited file (0 when not a snapshot).
  uint32_t snapshot_kind = 0;
  /// Sections whose CRC was recomputed and matched.
  uint64_t sections_verified = 0;
  /// WAL segments decoded end-to-end.
  uint64_t segments_scanned = 0;
  /// WAL records decoded across all segments.
  uint64_t records_decoded = 0;
  /// Checkpoint snapshots audited inside a WAL directory.
  uint64_t checkpoints_checked = 0;
  /// Torn bytes tolerated at the live segment's tail (crash artifact, not
  /// corruption; reported so operators know a truncation is pending).
  uint64_t torn_tail_bytes = 0;
  /// Deep pass only: live indexes that passed IntegrityCheck(kDeep).
  uint64_t indexes_deep_checked = 0;
};

/// \brief Audit one snapshot file (index, corpus, or checkpoint).
///
/// kQuick: header magic/version/CRC, section-table bounds, and a CRC32C
/// recomputation over every section payload.
/// kDeep: additionally decode the payload — the corpus, or an index of the
/// recorded kind — and run IntegrityCheck(kDeep) on the result; checkpoint
/// snapshots also get their WAL-state section decoded.
Status CheckSnapshotFile(const std::string& path, CheckLevel level,
                         const SnapshotReadOptions& options = {},
                         FsckReport* report = nullptr);

/// \brief Audit a WAL directory end-to-end. Read-only: the torn-tail
/// truncation recovery would normally perform is suppressed.
///
/// kQuick: every segment decodes; sealed segments must be clean and chain
/// to their successor via rotate records; LSNs strictly increase across
/// the retained log; checkpoint snapshots pass their quick audit.
/// kDeep: additionally cross-check every checkpoint's recorded LSN and
/// id watermark against the log's records, run IntegrityCheck(kDeep) on
/// every loadable checkpoint index, and replay the directory through
/// RecoveryManager, deep-checking the recovered index.
Status CheckWalDirectory(const std::string& dir, CheckLevel level,
                         WalEnv* env = nullptr,
                         FsckReport* report = nullptr);

}  // namespace irhint

#endif  // IRHINT_CORE_FSCK_H_

// Factory for every time-travel IR index in the library; used by the
// benchmark harness and the examples to instantiate indexes by kind.

#ifndef IRHINT_CORE_FACTORY_H_
#define IRHINT_CORE_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/index_kind.h"
#include "core/temporal_ir_index.h"

namespace irhint {

/// \brief Tuning knobs for all index kinds (each kind reads only its own).
struct IndexConfig {
  /// tIF+Slicing and the hybrid: number of time-domain slices.
  uint32_t num_slices = 50;
  /// Postings-HINT bits. The paper tunes the binary-search variant to
  /// m = 10 and the merge-sort / hybrid variants to m = 5 (Figure 9).
  int tif_hint_bits_bs = 10;
  int tif_hint_bits_ms = 5;
  /// irHINT variants: hierarchy bits (-1 = cost model).
  int irhint_bits = -1;
  /// tIF+Sharding: shard cap per list.
  uint32_t max_shards_per_list = 16;
  /// Scored kinds (src/rank): pruning divisions per ScoreBlockStore.
  uint32_t rank_divisions = 32;
};

/// \brief Instantiate an (unbuilt) index of the given kind.
std::unique_ptr<TemporalIrIndex> CreateIndex(IndexKind kind,
                                             const IndexConfig& config = {});

/// \brief Display name without instantiating.
std::string_view IndexKindName(IndexKind kind);

/// \brief The five indexes compared in Figures 11/12 (competitors + ours).
std::vector<IndexKind> ComparisonIndexKinds();

/// \brief All seven indexes of Table 5.
std::vector<IndexKind> AllIndexKinds();

/// \brief The kinds with impact-scored postings (TopKQuery support); kept
/// out of the two lists above so the Boolean comparison surfaces stay as
/// the paper defines them.
std::vector<IndexKind> ScoredIndexKinds();

/// \brief True iff CreateIndex(kind) produces an index whose TopKQuery is
/// implemented (i.e. a scored kind).
bool KindSupportsTopK(IndexKind kind);

}  // namespace irhint

#endif  // IRHINT_CORE_FACTORY_H_

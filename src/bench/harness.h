// Reusable benchmark harness: warmup + repeated trials, robust summary
// statistics, environment capture, and a schema-versioned JSON report that
// tools/bench_diff.py consumes to gate performance regressions in CI.
//
// The paper-reproduction binaries under bench/ print human tables; this
// layer adds the machine-readable trajectory on top. A binary runs each
// measurement through MeasureTrials(), collects BenchMetric rows into a
// BenchReport, and writes it with WriteJsonFile(). The committed baseline
// at the repo root (BENCH_core.json) is refreshed through the same path.

#ifndef IRHINT_BENCH_HARNESS_H_
#define IRHINT_BENCH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "common/status.h"

namespace irhint {
namespace bench {

/// JSON schema version emitted by BenchReport::ToJson. Bump when a field
/// changes meaning; tools/bench_diff.py refuses to compare across versions.
inline constexpr int kBenchSchemaVersion = 1;

/// \brief Robust summary of one metric's trial samples. Percentiles use the
/// nearest-rank rule on the sorted samples, so every reported value is an
/// actual observation (no interpolation noise at small trial counts).
struct TrialStats {
  size_t trials = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 for a single trial.
  double stddev = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// \brief Summarize `samples` (order irrelevant; empty input yields the
/// all-zero TrialStats).
TrialStats ComputeTrialStats(std::vector<double> samples);

/// \brief Nearest-rank percentile of an ascending-sorted sample vector;
/// 0.0 for an empty vector. `pct` in [0, 100].
double PercentileSorted(const std::vector<double>& sorted, double pct);

/// \brief Trial schedule for one measurement.
struct MeasureOptions {
  /// Untimed runs discarded before sampling starts (cache/page warmup).
  size_t warmup = 1;
  /// Timed runs that become the sample set.
  size_t trials = 5;
};

/// \brief Trial schedule from the environment: IRHINT_BENCH_WARMUP and
/// IRHINT_BENCH_TRIALS override `fallback`'s fields when set (trials is
/// clamped to >= 1).
MeasureOptions MeasureOptionsFromEnv(MeasureOptions fallback = {});

/// \brief Run `trial` options.warmup times untimed-and-discarded, then
/// options.trials times keeping each returned sample (typically seconds, but
/// any unit works — record it in the BenchMetric). The callable does its own
/// timing so it can exclude per-trial setup.
TrialStats MeasureTrials(const MeasureOptions& options,
                         const std::function<double()>& trial);

/// \brief Where and by whom a report was produced. Captured once per run so
/// bench_diff can refuse (or just annotate) cross-machine comparisons.
struct BenchEnvironment {
  /// Commit the binary was built from: env IRHINT_GIT_SHA when set (CI
  /// exports the workflow SHA), else the configure-time value, else
  /// "unknown" (tarball builds).
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string cxx_flags;
  std::string cpu_model;
  uint32_t hardware_threads = 0;
  /// ISO-8601 UTC, e.g. "2026-02-14T09:30:00Z".
  std::string timestamp_utc;
};

BenchEnvironment CaptureBenchEnvironment();

/// \brief One measured quantity. `family` groups related metrics for
/// reporting and for bench_diff's --families filter; `name` must be unique
/// within a report.
struct BenchMetric {
  std::string family;
  std::string name;
  std::string unit;
  /// Direction of goodness: true for throughputs, false for latencies and
  /// sizes. bench_diff flips its regression test accordingly.
  bool higher_is_better = false;
  TrialStats stats;
};

/// \brief A full benchmark report: suite name, environment, metric rows.
class BenchReport {
 public:
  explicit BenchReport(std::string suite)
      : suite_(std::move(suite)), environment_(CaptureBenchEnvironment()) {}

  void Add(BenchMetric metric) { metrics_.push_back(std::move(metric)); }

  /// \brief Convenience: summarize and add in one call.
  void Add(const std::string& family, const std::string& name,
           const std::string& unit, bool higher_is_better,
           const TrialStats& stats) {
    Add(BenchMetric{family, name, unit, higher_is_better, stats});
  }

  const std::string& suite() const { return suite_; }
  const BenchEnvironment& environment() const { return environment_; }
  BenchEnvironment* mutable_environment() { return &environment_; }
  const std::vector<BenchMetric>& metrics() const { return metrics_; }

  /// \brief Serialize to the schema-versioned JSON document (see
  /// EXPERIMENTS.md for the field list). Doubles are printed with %.17g so
  /// a parse round-trip is bit-exact.
  std::string ToJson() const;

  /// \brief ToJson() to `path` (atomically enough for a bench artifact:
  /// plain write, fails with a Status on I/O errors).
  Status WriteJsonFile(const std::string& path) const;

 private:
  std::string suite_;
  BenchEnvironment environment_;
  std::vector<BenchMetric> metrics_;
};

/// \brief Parse a document produced by BenchReport::ToJson. Rejects other
/// schema versions and malformed input with a Status (never crashes) — this
/// is a decode path; the JSON grammar subset accepted is exactly what
/// ToJson emits plus arbitrary whitespace.
IRHINT_UNTRUSTED StatusOr<BenchReport> ParseBenchJson(const std::string& json);

}  // namespace bench
}  // namespace irhint

#endif  // IRHINT_BENCH_HARNESS_H_

#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/env.h"

// Build provenance, stamped by src/CMakeLists.txt onto this one translation
// unit (so a new commit only recompiles harness.cc, not the library).
#ifndef IRHINT_GIT_SHA
#define IRHINT_GIT_SHA "unknown"
#endif
#ifndef IRHINT_BUILD_TYPE
#define IRHINT_BUILD_TYPE "unknown"
#endif
#ifndef IRHINT_CXX_FLAGS
#define IRHINT_CXX_FLAGS ""
#endif

namespace irhint {
namespace bench {

double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  // Nearest rank: the smallest sample with at least pct% of the mass at or
  // below it. rank is 1-based; pct<=0 maps to the minimum.
  const double raw = std::ceil(pct / 100.0 * static_cast<double>(sorted.size()));
  const size_t rank = static_cast<size_t>(
      std::clamp(raw, 1.0, static_cast<double>(sorted.size())));
  return sorted[rank - 1];
}

TrialStats ComputeTrialStats(std::vector<double> samples) {
  TrialStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.trials = samples.size();
  stats.min = samples.front();
  stats.max = samples.back();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (const double s : samples) sq += (s - stats.mean) * (s - stats.mean);
    stats.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  stats.p50 = PercentileSorted(samples, 50.0);
  stats.p90 = PercentileSorted(samples, 90.0);
  stats.p99 = PercentileSorted(samples, 99.0);
  return stats;
}

MeasureOptions MeasureOptionsFromEnv(MeasureOptions fallback) {
  if (const char* v = GetEnv("IRHINT_BENCH_WARMUP")) {
    fallback.warmup = static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  if (const char* v = GetEnv("IRHINT_BENCH_TRIALS")) {
    fallback.trials = static_cast<size_t>(std::strtoull(v, nullptr, 10));
  }
  fallback.trials = std::max<size_t>(1, fallback.trials);
  return fallback;
}

TrialStats MeasureTrials(const MeasureOptions& options,
                         const std::function<double()>& trial) {
  for (size_t i = 0; i < options.warmup; ++i) (void)trial();
  const size_t trials = std::max<size_t>(1, options.trials);
  std::vector<double> samples;
  samples.reserve(trials);
  for (size_t i = 0; i < trials; ++i) samples.push_back(trial());
  return ComputeTrialStats(std::move(samples));
}

namespace {

std::string CpuModelName() {
  // "model name : ..." from /proc/cpuinfo on Linux; "unknown" elsewhere or
  // when the pseudo-file is absent (containers without procfs).
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

std::string UtcNowIso8601() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  if (gmtime_r(&now, &tm) == nullptr) return "unknown";
  char buf[32];
  if (std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm) == 0) {
    return "unknown";
  }
  return buf;
}

}  // namespace

BenchEnvironment CaptureBenchEnvironment() {
  BenchEnvironment env;
  // CI exports the exact workflow SHA; the configure-time stamp can lag one
  // commit behind when building a dirty tree.
  const char* sha = GetEnv("IRHINT_GIT_SHA");
  env.git_sha = (sha != nullptr && sha[0] != '\0') ? sha : IRHINT_GIT_SHA;
#if defined(__clang__)
  env.compiler = "clang " __clang_version__;
#elif defined(__GNUC__)
  env.compiler = "gcc " __VERSION__;
#else
  env.compiler = "unknown";
#endif
  env.build_type = IRHINT_BUILD_TYPE;
  env.cxx_flags = IRHINT_CXX_FLAGS;
  env.cpu_model = CpuModelName();
  env.hardware_threads = std::thread::hardware_concurrency();
  env.timestamp_utc = UtcNowIso8601();
  return env;
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double value, std::string* out) {
  char buf[64];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

}  // namespace

std::string BenchReport::ToJson() const {
  std::string out;
  out += "{\n  \"schema_version\": ";
  out += std::to_string(kBenchSchemaVersion);
  out += ",\n  \"suite\": ";
  AppendJsonString(suite_, &out);
  out += ",\n  \"environment\": {\n";
  const auto field = [&out](const char* key, const std::string& value,
                            bool comma) {
    out += "    ";
    AppendJsonString(key, &out);
    out += ": ";
    AppendJsonString(value, &out);
    if (comma) out += ",";
    out += "\n";
  };
  field("git_sha", environment_.git_sha, true);
  field("compiler", environment_.compiler, true);
  field("build_type", environment_.build_type, true);
  field("cxx_flags", environment_.cxx_flags, true);
  field("cpu_model", environment_.cpu_model, true);
  out += "    \"hardware_threads\": ";
  out += std::to_string(environment_.hardware_threads);
  out += ",\n";
  field("timestamp_utc", environment_.timestamp_utc, false);
  out += "  },\n  \"metrics\": [";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    const BenchMetric& m = metrics_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"family\": ";
    AppendJsonString(m.family, &out);
    out += ", \"name\": ";
    AppendJsonString(m.name, &out);
    out += ", \"unit\": ";
    AppendJsonString(m.unit, &out);
    out += ", \"higher_is_better\": ";
    out += m.higher_is_better ? "true" : "false";
    out += ",\n     \"trials\": ";
    out += std::to_string(m.stats.trials);
    const auto num = [&out](const char* key, double value) {
      out += ", \"";
      out += key;
      out += "\": ";
      AppendJsonDouble(value, &out);
    };
    num("min", m.stats.min);
    num("max", m.stats.max);
    num("mean", m.stats.mean);
    num("stddev", m.stats.stddev);
    num("p50", m.stats.p50);
    num("p90", m.stats.p90);
    num("p99", m.stats.p99);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

Status BenchReport::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamoff>(json.size()));
  out.flush();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Minimal JSON reader for the documents ToJson emits (plus free-form
// whitespace). A decode path: every malformed input must come back as a
// Status, never a crash.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    IRHINT_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Fail(const std::string& what) const {
    return Status::Corruption("bench json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      pos_ += 5;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->type = JsonValue::Type::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      IRHINT_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue value;
      IRHINT_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      IRHINT_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // ToJson only emits \u00xx for control bytes; anything wider is
          // accepted but truncated to one byte, which is fine for a format
          // we also write.
          out->push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->type = JsonValue::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<std::string> RequireString(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kString) {
    return Status::Corruption(std::string("bench json: missing string field ") +
                              key);
  }
  return v->string_value;
}

StatusOr<double> RequireNumber(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    return Status::Corruption(std::string("bench json: missing number field ") +
                              key);
  }
  return v->number;
}

}  // namespace

StatusOr<BenchReport> ParseBenchJson(const std::string& json) {
  auto root = JsonParser(json).Parse();
  IRHINT_RETURN_NOT_OK(root.status());
  if (root->type != JsonValue::Type::kObject) {
    return Status::Corruption("bench json: document is not an object");
  }
  auto version = RequireNumber(*root, "schema_version");
  IRHINT_RETURN_NOT_OK(version.status());
  if (*version != kBenchSchemaVersion) {
    return Status::InvalidArgument(
        "bench json: schema_version " + std::to_string(*version) +
        " unsupported (want " + std::to_string(kBenchSchemaVersion) + ")");
  }
  auto suite = RequireString(*root, "suite");
  IRHINT_RETURN_NOT_OK(suite.status());
  BenchReport report(*suite);

  const JsonValue* env = root->Find("environment");
  if (env == nullptr || env->type != JsonValue::Type::kObject) {
    return Status::Corruption("bench json: missing environment object");
  }
  BenchEnvironment* e = report.mutable_environment();
  {
    auto v = RequireString(*env, "git_sha");
    IRHINT_RETURN_NOT_OK(v.status());
    e->git_sha = *v;
  }
  {
    auto v = RequireString(*env, "compiler");
    IRHINT_RETURN_NOT_OK(v.status());
    e->compiler = *v;
  }
  {
    auto v = RequireString(*env, "build_type");
    IRHINT_RETURN_NOT_OK(v.status());
    e->build_type = *v;
  }
  {
    auto v = RequireString(*env, "cxx_flags");
    IRHINT_RETURN_NOT_OK(v.status());
    e->cxx_flags = *v;
  }
  {
    auto v = RequireString(*env, "cpu_model");
    IRHINT_RETURN_NOT_OK(v.status());
    e->cpu_model = *v;
  }
  {
    auto v = RequireNumber(*env, "hardware_threads");
    IRHINT_RETURN_NOT_OK(v.status());
    e->hardware_threads = static_cast<uint32_t>(*v);
  }
  {
    auto v = RequireString(*env, "timestamp_utc");
    IRHINT_RETURN_NOT_OK(v.status());
    e->timestamp_utc = *v;
  }

  const JsonValue* metrics = root->Find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kArray) {
    return Status::Corruption("bench json: missing metrics array");
  }
  for (const JsonValue& m : metrics->array) {
    if (m.type != JsonValue::Type::kObject) {
      return Status::Corruption("bench json: metric is not an object");
    }
    BenchMetric metric;
    {
      auto v = RequireString(m, "family");
      IRHINT_RETURN_NOT_OK(v.status());
      metric.family = *v;
    }
    {
      auto v = RequireString(m, "name");
      IRHINT_RETURN_NOT_OK(v.status());
      metric.name = *v;
    }
    {
      auto v = RequireString(m, "unit");
      IRHINT_RETURN_NOT_OK(v.status());
      metric.unit = *v;
    }
    const JsonValue* hib = m.Find("higher_is_better");
    if (hib == nullptr || hib->type != JsonValue::Type::kBool) {
      return Status::Corruption(
          "bench json: missing bool field higher_is_better");
    }
    metric.higher_is_better = hib->bool_value;
    {
      auto v = RequireNumber(m, "trials");
      IRHINT_RETURN_NOT_OK(v.status());
      metric.stats.trials = static_cast<size_t>(*v);
    }
    const auto stat = [&m](const char* key, double* out) -> Status {
      auto v = RequireNumber(m, key);
      IRHINT_RETURN_NOT_OK(v.status());
      *out = *v;
      return Status::OK();
    };
    IRHINT_RETURN_NOT_OK(stat("min", &metric.stats.min));
    IRHINT_RETURN_NOT_OK(stat("max", &metric.stats.max));
    IRHINT_RETURN_NOT_OK(stat("mean", &metric.stats.mean));
    IRHINT_RETURN_NOT_OK(stat("stddev", &metric.stats.stddev));
    IRHINT_RETURN_NOT_OK(stat("p50", &metric.stats.p50));
    IRHINT_RETURN_NOT_OK(stat("p90", &metric.stats.p90));
    IRHINT_RETURN_NOT_OK(stat("p99", &metric.stats.p99));
    report.Add(std::move(metric));
  }
  return report;
}

}  // namespace bench
}  // namespace irhint

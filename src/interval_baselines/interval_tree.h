// Centered interval tree (Edelsbrunner 1980; Section 6.2 of the paper).
//
// The domain is divided recursively: intervals containing the center of the
// current (sub)domain are stored at the node in two sorted lists (by start
// ascending and by end descending); intervals entirely left/right of the
// center descend into the corresponding child. Range queries walk the path
// from the root, using the sorted lists for early-exit scans. Provides the
// classic O(log n + k) stabbing behaviour and serves as a baseline against
// HINT in the ablation bench.

#ifndef IRHINT_INTERVAL_BASELINES_INTERVAL_TREE_H_
#define IRHINT_INTERVAL_BASELINES_INTERVAL_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "data/object.h"
#include "hint/hint.h"  // IntervalRecord, StoredTime

namespace irhint {

/// \brief Static centered interval tree over [0, domain_end].
class IntervalTree {
 public:
  IntervalTree() = default;

  Status Build(const std::vector<IntervalRecord>& records, Time domain_end);

  /// \brief Report ids of all live intervals overlapping q, exactly once.
  void RangeQuery(const Interval& q, std::vector<ObjectId>* out) const;

  /// \brief Tombstone all entries of (id, interval).
  Status Erase(ObjectId id, const Interval& interval);

  size_t MemoryUsageBytes() const;
  size_t NumEntries() const { return num_entries_; }
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Entry {
    ObjectId id;
    StoredTime st;
    StoredTime end;
  };

  struct Node {
    StoredTime center = 0;
    int32_t left = -1;
    int32_t right = -1;
    std::vector<Entry> by_st;   // ascending interval start
    std::vector<Entry> by_end;  // descending interval end
  };

  int32_t BuildNode(std::vector<Entry>&& entries, Time lo, Time hi);

  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t num_entries_ = 0;
};

}  // namespace irhint

#endif  // IRHINT_INTERVAL_BASELINES_INTERVAL_TREE_H_

// 1D-grid interval index (Section 6.2 of the paper): the domain is divided
// into k disjoint partitions, intervals are replicated into every partition
// they intersect, and duplicate results are avoided with the reference-value
// method of Dittrich & Seeger — an interval is reported only from the
// partition containing max(i.st, q.st). This is the structure underlying
// the tIF+Slicing competitor; the ablation bench contrasts it with HINT.

#ifndef IRHINT_INTERVAL_BASELINES_GRID1D_H_
#define IRHINT_INTERVAL_BASELINES_GRID1D_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/object.h"
#include "hint/hint.h"  // IntervalRecord, StoredTime

namespace irhint {

struct Grid1DOptions {
  /// Number of uniform partitions.
  uint32_t num_partitions = 64;
};

/// \brief Uniform 1D grid over the time domain with replication.
class Grid1D {
 public:
  Grid1D() = default;

  Status Build(const std::vector<IntervalRecord>& records, Time domain_end,
               const Grid1DOptions& options);

  /// \brief Report ids of all live intervals overlapping q, exactly once.
  void RangeQuery(const Interval& q, std::vector<ObjectId>* out) const;

  Status Insert(ObjectId id, const Interval& interval);
  Status Erase(ObjectId id, const Interval& interval);

  size_t MemoryUsageBytes() const;
  size_t NumEntries() const { return num_entries_; }

  /// \brief Partition number containing raw time t.
  uint32_t PartitionOf(Time t) const;

 private:
  struct Cell {
    std::vector<ObjectId> ids;
    std::vector<StoredTime> sts;
    std::vector<StoredTime> ends;
  };

  Grid1DOptions options_;
  Time domain_size_ = 1;
  std::vector<Cell> cells_;
  size_t num_entries_ = 0;
};

}  // namespace irhint

#endif  // IRHINT_INTERVAL_BASELINES_GRID1D_H_

#include "interval_baselines/grid1d.h"

#include <algorithm>
#include <limits>

namespace irhint {

uint32_t Grid1D::PartitionOf(Time t) const {
  if (t >= domain_size_) return options_.num_partitions - 1;
  return static_cast<uint32_t>(static_cast<__uint128_t>(t) *
                               options_.num_partitions / domain_size_);
}

Status Grid1D::Build(const std::vector<IntervalRecord>& records,
                     Time domain_end, const Grid1DOptions& options) {
  if (options.num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  if (domain_end >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  options_ = options;
  domain_size_ = domain_end + 1;
  cells_.assign(options.num_partitions, Cell{});
  num_entries_ = 0;
  for (const IntervalRecord& rec : records) {
    IRHINT_RETURN_NOT_OK(Insert(rec.id, rec.interval));
  }
  return Status::OK();
}

Status Grid1D::Insert(ObjectId id, const Interval& interval) {
  if (cells_.empty()) return Status::InvalidArgument("index not built");
  if (interval.st > interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (interval.end >= domain_size_) {
    return Status::OutOfDomain("interval exceeds declared domain");
  }
  const uint32_t first = PartitionOf(interval.st);
  const uint32_t last = PartitionOf(interval.end);
  for (uint32_t p = first; p <= last; ++p) {
    Cell& cell = cells_[p];
    cell.ids.push_back(id);
    cell.sts.push_back(static_cast<StoredTime>(interval.st));
    cell.ends.push_back(static_cast<StoredTime>(interval.end));
    ++num_entries_;
  }
  return Status::OK();
}

Status Grid1D::Erase(ObjectId id, const Interval& interval) {
  if (cells_.empty()) return Status::InvalidArgument("index not built");
  const uint32_t first = PartitionOf(interval.st);
  const uint32_t last = PartitionOf(interval.end);
  size_t tombstoned = 0;
  for (uint32_t p = first; p <= last; ++p) {
    Cell& cell = cells_[p];
    for (size_t i = 0; i < cell.ids.size(); ++i) {
      if (cell.ids[i] == id) {
        cell.ids[i] = kTombstoneId;
        ++tombstoned;
        break;
      }
    }
  }
  return tombstoned > 0 ? Status::OK() : Status::NotFound("id not present");
}

void Grid1D::RangeQuery(const Interval& q, std::vector<ObjectId>* out) const {
  if (cells_.empty() || q.st > q.end || q.st >= domain_size_) return;
  const uint32_t first = PartitionOf(q.st);
  const uint32_t last = PartitionOf(std::min<Time>(q.end, domain_size_ - 1));
  const StoredTime qst = static_cast<StoredTime>(q.st);
  for (uint32_t p = first; p <= last; ++p) {
    const Cell& cell = cells_[p];
    for (size_t i = 0; i < cell.ids.size(); ++i) {
      if (cell.ids[i] == kTombstoneId) continue;
      if (cell.sts[i] > q.end || cell.ends[i] < q.st) continue;
      // Reference value: report only from the partition that contains
      // max(i.st, q.st) to avoid duplicates across replicas.
      const StoredTime ref = std::max(cell.sts[i], qst);
      if (PartitionOf(ref) == p) out->push_back(cell.ids[i]);
    }
  }
}

size_t Grid1D::MemoryUsageBytes() const {
  size_t bytes = cells_.capacity() * sizeof(Cell);
  for (const Cell& cell : cells_) {
    bytes += cell.ids.capacity() * sizeof(ObjectId);
    bytes += cell.sts.capacity() * sizeof(StoredTime);
    bytes += cell.ends.capacity() * sizeof(StoredTime);
  }
  return bytes;
}

}  // namespace irhint

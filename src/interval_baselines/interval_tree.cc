#include "interval_baselines/interval_tree.h"

#include <algorithm>
#include <limits>

namespace irhint {

Status IntervalTree::Build(const std::vector<IntervalRecord>& records,
                           Time domain_end) {
  if (domain_end >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  nodes_.clear();
  root_ = -1;
  num_entries_ = records.size();
  std::vector<Entry> entries;
  entries.reserve(records.size());
  for (const IntervalRecord& rec : records) {
    if (rec.interval.end > domain_end) {
      return Status::OutOfDomain("interval exceeds declared domain");
    }
    entries.push_back(Entry{rec.id, static_cast<StoredTime>(rec.interval.st),
                            static_cast<StoredTime>(rec.interval.end)});
  }
  root_ = BuildNode(std::move(entries), 0, domain_end);
  return Status::OK();
}

int32_t IntervalTree::BuildNode(std::vector<Entry>&& entries, Time lo,
                                Time hi) {
  if (entries.empty()) return -1;
  const Time center = lo + (hi - lo) / 2;
  std::vector<Entry> here;
  std::vector<Entry> left;
  std::vector<Entry> right;
  for (Entry& e : entries) {
    if (e.end < center) {
      left.push_back(e);
    } else if (e.st > center) {
      right.push_back(e);
    } else {
      here.push_back(e);
    }
  }
  entries.clear();
  entries.shrink_to_fit();

  const int32_t index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].center = static_cast<StoredTime>(center);
  nodes_[index].by_st = here;
  std::sort(nodes_[index].by_st.begin(), nodes_[index].by_st.end(),
            [](const Entry& a, const Entry& b) { return a.st < b.st; });
  nodes_[index].by_end = std::move(here);
  std::sort(nodes_[index].by_end.begin(), nodes_[index].by_end.end(),
            [](const Entry& a, const Entry& b) { return a.end > b.end; });

  // lo == hi implies every entry contains the center; recursion terminates.
  const int32_t left_child =
      (center > lo) ? BuildNode(std::move(left), lo, center - 1) : -1;
  const int32_t right_child =
      (center < hi) ? BuildNode(std::move(right), center + 1, hi) : -1;
  nodes_[index].left = left_child;
  nodes_[index].right = right_child;
  return index;
}

void IntervalTree::RangeQuery(const Interval& q,
                              std::vector<ObjectId>* out) const {
  if (root_ < 0 || q.st > q.end) return;
  // Explicit stack; both children must sometimes be visited.
  std::vector<int32_t> stack{root_};
  while (!stack.empty()) {
    const int32_t index = stack.back();
    stack.pop_back();
    if (index < 0) continue;
    const Node& node = nodes_[index];
    if (q.end < node.center) {
      // Node intervals contain the center; overlap iff they start <= q.end.
      for (const Entry& e : node.by_st) {
        if (e.st > q.end) break;
        if (e.id != kTombstoneId) out->push_back(e.id);
      }
      stack.push_back(node.left);
    } else if (q.st > node.center) {
      // Overlap iff the interval ends >= q.st.
      for (const Entry& e : node.by_end) {
        if (e.end < q.st) break;
        if (e.id != kTombstoneId) out->push_back(e.id);
      }
      stack.push_back(node.right);
    } else {
      // The query covers the center: every node interval overlaps.
      for (const Entry& e : node.by_st) {
        if (e.id != kTombstoneId) out->push_back(e.id);
      }
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

Status IntervalTree::Erase(ObjectId id, const Interval& interval) {
  int32_t index = root_;
  while (index >= 0) {
    Node& node = nodes_[index];
    if (interval.end < node.center) {
      index = node.left;
    } else if (interval.st > node.center) {
      index = node.right;
    } else {
      bool found = false;
      for (Entry& e : node.by_st) {
        if (e.id == id) {
          e.id = kTombstoneId;
          found = true;
          break;
        }
      }
      for (Entry& e : node.by_end) {
        if (e.id == id) {
          e.id = kTombstoneId;
          break;
        }
      }
      return found ? Status::OK() : Status::NotFound("id not present");
    }
  }
  return Status::NotFound("id not present");
}

size_t IntervalTree::MemoryUsageBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    bytes += node.by_st.capacity() * sizeof(Entry);
    bytes += node.by_end.capacity() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace irhint

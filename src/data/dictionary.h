// The global dictionary D of descriptive elements, with optional string
// terms and per-element document frequencies (number of objects whose
// description contains the element). Frequencies drive the query-time
// ordering of q.d (least frequent element first, Algorithm 1).

#ifndef IRHINT_DATA_DICTIONARY_H_
#define IRHINT_DATA_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/status.h"
#include "data/object.h"

namespace irhint {

/// \brief Global element dictionary.
///
/// Two usage modes:
///  * *Textual*: terms are interned via AddTerm()/LookupTerm(); element ids
///    are assigned densely in insertion order (used by the examples, which
///    work with real keyword strings).
///  * *Anonymous*: a fixed id universe [0, size) with no strings (used by
///    the synthetic generators, where elements are abstract ids).
class Dictionary {
 public:
  Dictionary() = default;

  /// \brief Create an anonymous dictionary of `size` elements.
  static Dictionary MakeAnonymous(size_t size);

  /// \brief Intern a term; returns its (possibly pre-existing) element id.
  ElementId AddTerm(std::string_view term);

  /// \brief Find a term's id, or kInvalidElement if unknown.
  ElementId LookupTerm(std::string_view term) const;

  /// \brief Term string for an id (empty for anonymous dictionaries).
  const std::string& Term(ElementId e) const;

  /// \brief Number of elements in the dictionary.
  size_t size() const { return size_; }

  /// \brief Document frequency of element e (0 before frequencies are set).
  uint64_t Frequency(ElementId e) const {
    return e < frequencies_.size() ? frequencies_[e] : 0;
  }

  /// \brief Replace all frequencies; indexed by element id.
  void SetFrequencies(std::vector<uint64_t> frequencies);

  /// \brief Increase the frequency of element e by delta (used by inserts).
  void BumpFrequency(ElementId e, uint64_t delta = 1);

  const std::vector<uint64_t>& frequencies() const { return frequencies_; }

  /// \brief Sort query elements by ascending document frequency (the
  /// standard least-frequent-first evaluation order); ties break by id so
  /// the order is deterministic.
  void SortByFrequency(std::vector<ElementId>* elements) const;

  static constexpr ElementId kInvalidElement = static_cast<ElementId>(-1);

 private:
  size_t size_ = 0;
  std::vector<std::string> terms_;                 // empty when anonymous
  FlatHashMap<std::string, ElementId> term_to_id_;
  std::vector<uint64_t> frequencies_;
};

}  // namespace irhint

#endif  // IRHINT_DATA_DICTIONARY_H_

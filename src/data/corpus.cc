#include "data/corpus.h"

#include <algorithm>
#include <sstream>

#include "common/checked_math.h"

namespace irhint {

std::string CorpusStats::ToString() const {
  std::ostringstream os;
  os << "cardinality              " << cardinality << "\n"
     << "time domain              [" << domain_start << ", " << domain_end
     << "]\n"
     << "min/avg/max duration     " << min_duration << " / " << avg_duration
     << " / " << max_duration << "\n"
     << "avg duration [% domain]  " << avg_duration_pct << "\n"
     << "dictionary size          " << dictionary_size << "\n"
     << "min/avg/max |d|          " << min_description_size << " / "
     << avg_description_size << " / " << max_description_size << "\n"
     << "min/avg/max elem freq    " << min_element_frequency << " / "
     << avg_element_frequency << " / " << max_element_frequency << "\n";
  return os.str();
}

Status Corpus::Add(Object object) {
  if (object.id != objects_.size()) {
    return Status::InvalidArgument("object ids must be dense and in order");
  }
  if (object.interval.st > object.interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  domain_end_ = std::max(domain_end_, object.interval.end);
  objects_.push_back(std::move(object));
  return Status::OK();
}

ObjectId Corpus::Append(Interval interval, std::vector<ElementId> elements) {
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  domain_end_ = std::max(domain_end_, interval.end);
  objects_.emplace_back(id, interval, std::move(elements));
  return id;
}

Status Corpus::Finalize() {
  std::vector<uint64_t> frequencies(dictionary_.size(), 0);
  for (Object& o : objects_) {
    std::sort(o.elements.begin(), o.elements.end());
    o.elements.erase(std::unique(o.elements.begin(), o.elements.end()),
                     o.elements.end());
    for (ElementId e : o.elements) {
      // GrowToFit widens before the increment: e + 1 in ElementId width
      // wraps to 0 at the max id, turning the resize into a no-op and the
      // increment into an out-of-bounds write (the PR 4 bug class).
      if (e >= frequencies.size()) {
        frequencies.resize(GrowToFit(e), 0);
      }
      ++frequencies[e];
    }
    if (o.interval.st > o.interval.end) {
      return Status::Corruption("interval start exceeds end after finalize");
    }
  }
  dictionary_.SetFrequencies(std::move(frequencies));
  return Status::OK();
}

CorpusStats Corpus::Stats() const {
  CorpusStats stats;
  stats.cardinality = objects_.size();
  stats.domain_end = domain_end_;
  stats.dictionary_size = dictionary_.size();
  if (objects_.empty()) return stats;

  stats.min_duration = UINT64_MAX;
  stats.min_description_size = UINT64_MAX;
  double duration_sum = 0.0;
  double description_sum = 0.0;
  for (const Object& o : objects_) {
    const uint64_t dur = o.interval.Length();
    stats.min_duration = std::min(stats.min_duration, dur);
    stats.max_duration = std::max(stats.max_duration, dur);
    duration_sum += static_cast<double>(dur);
    const uint64_t dsize = o.elements.size();
    stats.min_description_size = std::min(stats.min_description_size, dsize);
    stats.max_description_size = std::max(stats.max_description_size, dsize);
    description_sum += static_cast<double>(dsize);
  }
  stats.avg_duration = duration_sum / static_cast<double>(objects_.size());
  stats.avg_duration_pct =
      100.0 * stats.avg_duration / static_cast<double>(domain_end_ + 1);
  stats.avg_description_size =
      description_sum / static_cast<double>(objects_.size());

  const auto& freqs = dictionary_.frequencies();
  if (!freqs.empty()) {
    stats.min_element_frequency = UINT64_MAX;
    double freq_sum = 0.0;
    uint64_t nonzero = 0;
    for (uint64_t f : freqs) {
      if (f == 0) continue;
      ++nonzero;
      stats.min_element_frequency = std::min(stats.min_element_frequency, f);
      stats.max_element_frequency = std::max(stats.max_element_frequency, f);
      freq_sum += static_cast<double>(f);
    }
    if (nonzero > 0) {
      stats.avg_element_frequency = freq_sum / static_cast<double>(nonzero);
    } else {
      stats.min_element_frequency = 0;
    }
  }
  return stats;
}

Corpus Corpus::Prefix(size_t count) const {
  Corpus out;
  out.dictionary_ = dictionary_;
  out.domain_end_ = domain_end_;
  count = std::min(count, objects_.size());
  for (size_t i = 0; i < count; ++i) {
    out.objects_.push_back(objects_[i]);
  }
  // Frequencies must reflect only the retained prefix.
  std::vector<uint64_t> frequencies(out.dictionary_.size(), 0);
  for (const Object& o : out.objects_) {
    for (ElementId e : o.elements) {
      if (e >= frequencies.size()) {
        frequencies.resize(GrowToFit(e), 0);
      }
      ++frequencies[e];
    }
  }
  out.dictionary_.SetFrequencies(std::move(frequencies));
  return out;
}

}  // namespace irhint

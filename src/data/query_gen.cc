#include "data/query_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace irhint {

WorkloadGenerator::WorkloadGenerator(const Corpus& corpus, uint64_t seed)
    : corpus_(corpus), rng_(seed) {
  const Status st = tif_.Build(corpus);
  assert(st.ok());
  (void)st;
}

uint64_t WorkloadGenerator::ExtentToLength(double extent_pct) const {
  const double domain_size = static_cast<double>(corpus_.domain_end()) + 1.0;
  const uint64_t length =
      static_cast<uint64_t>(std::llround(domain_size * extent_pct / 100.0));
  return std::clamp<uint64_t>(length, 1, corpus_.domain_end() + 1);
}

Interval WorkloadGenerator::MakeIntervalAround(const Interval& anchor,
                                               uint64_t length) {
  // Choose q.st so that [q.st, q.st + length - 1] overlaps the anchor and
  // stays inside [0, domain_end].
  const Time domain_end = corpus_.domain_end();
  const Time lo =
      anchor.st + 1 >= length ? anchor.st + 1 - length : 0;
  const Time hi = std::min<Time>(anchor.end, domain_end + 1 - length);
  const Time st = hi >= lo ? static_cast<Time>(rng_.UniformRange(
                                 static_cast<int64_t>(lo),
                                 static_cast<int64_t>(hi)))
                           : lo;
  return Interval(st, st + length - 1);
}

std::vector<ElementId> WorkloadGenerator::PickElements(const Object& anchor,
                                                       uint32_t k) {
  if (anchor.elements.size() < k) return {};
  // Frequency-weighted sampling without replacement (roulette over the
  // anchor's description).
  std::vector<ElementId> pool = anchor.elements;
  std::vector<double> weights(pool.size());
  double total = 0.0;
  for (size_t i = 0; i < pool.size(); ++i) {
    weights[i] =
        static_cast<double>(corpus_.dictionary().Frequency(pool[i])) + 1.0;
    total += weights[i];
  }
  std::vector<ElementId> picked;
  picked.reserve(k);
  for (uint32_t round = 0; round < k; ++round) {
    double target = rng_.NextDouble() * total;
    size_t chosen = pool.size() - 1;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (weights[i] <= 0.0) continue;
      if (target < weights[i]) {
        chosen = i;
        break;
      }
      target -= weights[i];
    }
    picked.push_back(pool[chosen]);
    total -= weights[chosen];
    weights[chosen] = 0.0;
  }
  return picked;
}

std::vector<Query> WorkloadGenerator::ExtentWorkload(double extent_pct,
                                                     uint32_t k,
                                                     size_t count) {
  std::vector<Query> queries;
  if (corpus_.empty()) return queries;
  queries.reserve(count);
  const uint64_t length = ExtentToLength(extent_pct);
  size_t attempts = 0;
  const size_t max_attempts = count * 200 + 1000;
  while (queries.size() < count && attempts < max_attempts) {
    ++attempts;
    const Object& anchor =
        corpus_.object(static_cast<ObjectId>(rng_.Uniform(corpus_.size())));
    std::vector<ElementId> elements = PickElements(anchor, k);
    if (elements.empty()) continue;
    queries.emplace_back(MakeIntervalAround(anchor.interval, length),
                         std::move(elements));
  }
  return queries;
}

std::vector<Query> WorkloadGenerator::FrequencyBinWorkload(
    double lo_pct, double hi_pct, double extent_pct, uint32_t k,
    size_t count) {
  const double n = static_cast<double>(corpus_.size());
  // A negative lo_pct means "no lower bound" (the paper's [*-x] bins).
  const uint64_t lo =
      lo_pct <= 0 ? 0 : static_cast<uint64_t>(n * lo_pct / 100.0);
  const uint64_t hi =
      hi_pct < 0 ? UINT64_MAX : static_cast<uint64_t>(n * hi_pct / 100.0);
  auto in_bin = [&](ElementId e) {
    const uint64_t f = corpus_.dictionary().Frequency(e);
    return f > lo && f <= hi && f > 0;
  };

  // Elements inside the bin.
  std::vector<ElementId> bin_elements;
  for (ElementId e = 0;
       e < static_cast<ElementId>(corpus_.dictionary().size()); ++e) {
    if (in_bin(e)) bin_elements.push_back(e);
  }
  std::vector<Query> queries;
  if (bin_elements.empty()) return queries;
  queries.reserve(count);
  const uint64_t length = ExtentToLength(extent_pct);

  size_t attempts = 0;
  const size_t max_attempts = count * 500 + 1000;
  std::vector<ElementId> candidates;
  while (queries.size() < count && attempts < max_attempts) {
    ++attempts;
    const ElementId seed_element =
        bin_elements[rng_.Uniform(bin_elements.size())];
    const auto* list = tif_.List(seed_element);
    if (list == nullptr || list->empty()) continue;
    const Posting& posting = (*list)[rng_.Uniform(list->size())];
    if (posting.id == kTombstoneId) continue;
    const Object& anchor = corpus_.object(posting.id);
    // All query elements must come from the bin and from the anchor.
    candidates.clear();
    for (ElementId e : anchor.elements) {
      if (in_bin(e)) candidates.push_back(e);
    }
    if (candidates.size() < k) continue;
    // Random k-subset containing the seed element.
    std::vector<ElementId> elements{seed_element};
    while (elements.size() < k) {
      const ElementId e = candidates[rng_.Uniform(candidates.size())];
      if (std::find(elements.begin(), elements.end(), e) == elements.end()) {
        elements.push_back(e);
      }
    }
    queries.emplace_back(MakeIntervalAround(anchor.interval, length),
                         std::move(elements));
  }
  return queries;
}

std::vector<Query> WorkloadGenerator::MixedWorkload(size_t count) {
  static constexpr double kExtents[] = {0.01, 0.05, 0.1, 0.5,
                                        1.0,  5.0,  10.0};
  std::vector<Query> queries;
  if (corpus_.empty()) return queries;
  queries.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 200 + 1000;
  while (queries.size() < count && attempts < max_attempts) {
    ++attempts;
    const double extent =
        kExtents[rng_.Uniform(sizeof(kExtents) / sizeof(kExtents[0]))];
    const uint32_t k = 1 + static_cast<uint32_t>(rng_.Uniform(5));
    const Object& anchor =
        corpus_.object(static_cast<ObjectId>(rng_.Uniform(corpus_.size())));
    std::vector<ElementId> elements = PickElements(anchor, k);
    if (elements.empty()) continue;
    queries.emplace_back(
        MakeIntervalAround(anchor.interval, ExtentToLength(extent)),
        std::move(elements));
  }
  return queries;
}

std::vector<Query> WorkloadGenerator::EmptyResultWorkload(double extent_pct,
                                                          uint32_t k,
                                                          size_t count) {
  std::vector<Query> queries;
  if (corpus_.empty()) return queries;
  queries.reserve(count);
  const uint64_t length = ExtentToLength(extent_pct);
  size_t attempts = 0;
  const size_t max_attempts = count * 500 + 1000;
  std::vector<ObjectId> results;
  while (queries.size() < count && attempts < max_attempts) {
    ++attempts;
    // Random elements (frequency-weighted via a random object) and a random
    // interval; keep only queries the oracle reports empty.
    const Object& anchor =
        corpus_.object(static_cast<ObjectId>(rng_.Uniform(corpus_.size())));
    std::vector<ElementId> elements = PickElements(anchor, k);
    if (elements.empty()) continue;
    const Time st = static_cast<Time>(
        rng_.Uniform(corpus_.domain_end() + 2 - length));
    Query query(Interval(st, st + length - 1), std::move(elements));
    tif_.Query(query, &results);
    if (results.empty()) queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace irhint

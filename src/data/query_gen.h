// Time-travel IR query workload generation, following Section 5.1.
//
// Four experimental axes are supported:
//  (1) query interval extent as a % of the domain (0.01% .. 100%; extent 0
//      produces stabbing queries),
//  (2) number of query elements |q.d| in 1..5,
//  (3) element-frequency bins (elements appearing in lo%..hi% of objects),
//  (4) query selectivity bins (delegated to the eval harness, which bins a
//      mixed workload by oracle-measured result counts).
//
// All generated queries (except the explicit empty-result workload) have a
// non-empty result by construction: each query is anchored at a random
// corpus object whose description supplies the query elements and whose
// interval overlaps the query interval. Element choices are weighted by
// global frequency — "the probability of an element to appear in a query
// follows the element frequency distribution in the collection".

#ifndef IRHINT_DATA_QUERY_GEN_H_
#define IRHINT_DATA_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/corpus.h"
#include "data/object.h"
#include "ir/tif.h"

namespace irhint {

/// \brief Generates reproducible query workloads over one corpus.
class WorkloadGenerator {
 public:
  /// Builds an internal tIF over the corpus (used to anchor frequency-bin
  /// queries and to verify emptiness for the zero-result workload).
  WorkloadGenerator(const Corpus& corpus, uint64_t seed);

  /// \brief Axis (1)/(2): `extent_pct` percent of the domain (0 = stabbing
  /// query of a single time point), `k` query elements. Non-empty results.
  std::vector<Query> ExtentWorkload(double extent_pct, uint32_t k,
                                    size_t count);

  /// \brief Axis (3): all k query elements drawn from the frequency bin
  /// (lo_pct, hi_pct] (percent of corpus cardinality). Non-empty results.
  /// May return fewer than `count` queries if the bin is too sparse.
  std::vector<Query> FrequencyBinWorkload(double lo_pct, double hi_pct,
                                          double extent_pct, uint32_t k,
                                          size_t count);

  /// \brief Axis (4) input: mixed extents (from the paper's value set) and
  /// |q.d| in 1..5, all with non-empty results; the harness bins them by
  /// measured selectivity.
  std::vector<Query> MixedWorkload(size_t count);

  /// \brief Queries with an empty result set (the paper's "0" bin).
  std::vector<Query> EmptyResultWorkload(double extent_pct, uint32_t k,
                                         size_t count);

  const TemporalInvertedFile& oracle() const { return tif_; }

 private:
  /// Query interval of `length` points overlapping `anchor`, inside the
  /// domain.
  Interval MakeIntervalAround(const Interval& anchor, uint64_t length);

  /// k distinct elements from the anchor's description, frequency-weighted,
  /// or empty if the description is too small.
  std::vector<ElementId> PickElements(const Object& anchor, uint32_t k);

  uint64_t ExtentToLength(double extent_pct) const;

  const Corpus& corpus_;
  TemporalInvertedFile tif_;
  Rng rng_;
};

}  // namespace irhint

#endif  // IRHINT_DATA_QUERY_GEN_H_

// A corpus: the object collection O plus its global dictionary and summary
// statistics (the quantities of Table 3 in the paper).

#ifndef IRHINT_DATA_CORPUS_H_
#define IRHINT_DATA_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dictionary.h"
#include "data/object.h"

namespace irhint {

/// \brief Summary statistics of a corpus (mirrors Table 3 of the paper).
struct CorpusStats {
  uint64_t cardinality = 0;
  Time domain_start = 0;
  Time domain_end = 0;
  uint64_t min_duration = 0;
  uint64_t max_duration = 0;
  double avg_duration = 0.0;
  double avg_duration_pct = 0.0;  // of the full time domain
  uint64_t dictionary_size = 0;
  uint64_t min_description_size = 0;
  uint64_t max_description_size = 0;
  double avg_description_size = 0.0;
  uint64_t min_element_frequency = 0;
  uint64_t max_element_frequency = 0;
  double avg_element_frequency = 0.0;

  /// \brief Multi-line human-readable rendering.
  std::string ToString() const;
};

/// \brief The object collection plus its dictionary.
///
/// Objects are stored with dense ids 0..n-1 in insertion order (new inserts
/// get larger ids, matching the update model of Section 5.5). Finalize()
/// sorts descriptions, computes element frequencies and validates the data.
class Corpus {
 public:
  Corpus() = default;

  /// \brief Append an object. The object's id must equal size().
  Status Add(Object object);

  /// \brief Convenience overload assigning the next id automatically.
  ObjectId Append(Interval interval, std::vector<ElementId> elements);

  /// \brief Sort/unique all descriptions, derive frequencies, validate.
  Status Finalize();

  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  const Object& object(ObjectId id) const { return objects_[id]; }
  const std::vector<Object>& objects() const { return objects_; }

  Dictionary& dictionary() { return dictionary_; }
  const Dictionary& dictionary() const { return dictionary_; }
  void set_dictionary(Dictionary d) { dictionary_ = std::move(d); }

  /// \brief End of the time domain (max t_end over all objects unless a
  /// larger domain was declared with DeclareDomain()).
  Time domain_end() const { return domain_end_; }

  /// \brief Declare the time domain [0, end] explicitly (needed when the
  /// generator's domain extends past the last object, or when later inserts
  /// may grow time).
  void DeclareDomain(Time end) { domain_end_ = std::max(domain_end_, end); }

  /// \brief Compute the Table 3 statistics.
  CorpusStats Stats() const;

  /// \brief Split off the last `fraction` of objects (by id) — used by the
  /// update experiments which index 90% offline and insert the rest.
  Corpus Prefix(size_t count) const;

 private:
  std::vector<Object> objects_;
  Dictionary dictionary_;
  Time domain_end_ = 0;
};

}  // namespace irhint

#endif  // IRHINT_DATA_CORPUS_H_

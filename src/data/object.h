// Core value types of the temporal IR data model (Section 2.1 of the paper):
// time intervals, data objects, and time-travel IR queries.

#ifndef IRHINT_DATA_OBJECT_H_
#define IRHINT_DATA_OBJECT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace irhint {

/// \brief Object identifier. Objects are assigned dense, increasing ids.
using ObjectId = uint32_t;

/// \brief Identifier of a descriptive element in the global dictionary D.
using ElementId = uint32_t;

/// \brief Exclusive upper bound on element ids accepted from decode
/// boundaries (WAL records, snapshots). Dictionary ids are dense, so the
/// per-element frequency tables are allocated out to the largest id seen;
/// without a ceiling, one hostile id in an otherwise CRC-valid record
/// forces a multi-gigabyte resize. 2^28 elements (a 2 GiB table) is far
/// beyond any real dictionary.
inline constexpr ElementId kElementIdLimit = 1u << 28;

/// \brief A discrete time point. The raw (application) domain can be any
/// range of non-negative integers; HINT-based indexes rescale it internally.
using Time = uint64_t;

/// \brief Sentinel id used for tombstoned (logically deleted) entries.
inline constexpr ObjectId kTombstoneId = static_cast<ObjectId>(-1);

/// \brief Closed time interval [st, end] with st <= end.
struct Interval {
  Time st = 0;
  Time end = 0;

  Interval() = default;
  Interval(Time s, Time e) : st(s), end(e) {}

  bool operator==(const Interval& other) const = default;

  /// \brief Duration as number of covered time points (end - st + 1).
  uint64_t Length() const { return end - st + 1; }
};

/// \brief The Overlap predicate of Section 2.1: intervals share >= 1 point.
inline bool Overlaps(const Interval& a, const Interval& b) {
  return a.st <= b.end && b.st <= a.end;
}

/// \brief True iff time point t lies inside interval i.
inline bool Contains(const Interval& i, Time t) {
  return i.st <= t && t <= i.end;
}

/// \brief A data object <id, [t_st, t_end], d>: identifier, lifespan and a
/// set of descriptive elements (set semantics; `elements` is sorted and
/// duplicate-free).
struct Object {
  ObjectId id = 0;
  Interval interval;
  std::vector<ElementId> elements;

  Object() = default;
  Object(ObjectId object_id, Interval iv, std::vector<ElementId> elems)
      : id(object_id), interval(iv), elements(std::move(elems)) {}

  /// \brief True iff the (sorted) description contains element e.
  bool ContainsElement(ElementId e) const;

  /// \brief True iff the description contains every element of the (sorted)
  /// query description.
  bool ContainsAll(const std::vector<ElementId>& query_elements) const;
};

/// \brief One ranked-retrieval result: an object id plus its accumulated
/// impact score. Ranked results are ordered by (score desc, id asc) — the
/// id tie-break is what makes top-k answers deterministic across index
/// kinds, shard layouts and traversal orders.
struct ScoredHit {
  ObjectId id = 0;
  uint64_t score = 0;

  bool operator==(const ScoredHit& other) const = default;
};

/// \brief The ranked total order: higher score first, ties by ascending id.
inline bool ScoredBetter(const ScoredHit& a, const ScoredHit& b) {
  return a.score != b.score ? a.score > b.score : a.id < b.id;
}

/// \brief A time-travel IR query q = <[t_st, t_end], d> (Definition 2.1).
struct Query {
  Interval interval;
  std::vector<ElementId> elements;

  Query() = default;
  Query(Interval iv, std::vector<ElementId> elems)
      : interval(iv), elements(std::move(elems)) {}
};

inline bool Object::ContainsElement(ElementId e) const {
  // Descriptions are short on average; binary search over the sorted vector.
  size_t lo = 0, hi = elements.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (elements[mid] < e) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < elements.size() && elements[lo] == e;
}

inline bool Object::ContainsAll(
    const std::vector<ElementId>& query_elements) const {
  // Merge over two sorted vectors.
  size_t i = 0;
  for (ElementId e : query_elements) {
    while (i < elements.size() && elements[i] < e) ++i;
    if (i == elements.size() || elements[i] != e) return false;
  }
  return true;
}

}  // namespace irhint

#endif  // IRHINT_DATA_OBJECT_H_

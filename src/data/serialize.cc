#include "data/serialize.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace irhint {

namespace {

constexpr uint64_t kMagic = 0x4952484e54435231ULL;  // "IRHNTCR1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return Status::IoError("cannot open " + path);
  std::FILE* f = file.get();
  if (!WriteU64(f, kMagic) || !WriteU64(f, corpus.size()) ||
      !WriteU64(f, corpus.domain_end()) ||
      !WriteU64(f, corpus.dictionary().size())) {
    return Status::IoError("write failed: " + path);
  }
  for (const Object& o : corpus.objects()) {
    if (!WriteU64(f, o.interval.st) || !WriteU64(f, o.interval.end) ||
        !WriteU64(f, o.elements.size())) {
      return Status::IoError("write failed: " + path);
    }
    if (!o.elements.empty() &&
        std::fwrite(o.elements.data(), sizeof(ElementId), o.elements.size(),
                    f) != o.elements.size()) {
      return Status::IoError("write failed: " + path);
    }
  }
  return Status::OK();
}

StatusOr<Corpus> LoadCorpus(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return Status::IoError("cannot open " + path);
  std::FILE* f = file.get();
  uint64_t magic, count, domain_end, dict_size;
  if (!ReadU64(f, &magic) || magic != kMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadU64(f, &count) || !ReadU64(f, &domain_end) ||
      !ReadU64(f, &dict_size)) {
    return Status::Corruption("truncated header in " + path);
  }
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(dict_size));
  corpus.DeclareDomain(domain_end);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t st, end, num_elements;
    if (!ReadU64(f, &st) || !ReadU64(f, &end) || !ReadU64(f, &num_elements)) {
      return Status::Corruption("truncated object in " + path);
    }
    if (st > end || num_elements > dict_size) {
      return Status::Corruption("invalid object in " + path);
    }
    std::vector<ElementId> elements(num_elements);
    if (num_elements > 0 &&
        std::fread(elements.data(), sizeof(ElementId), num_elements, f) !=
            num_elements) {
      return Status::Corruption("truncated elements in " + path);
    }
    corpus.Append(Interval(st, end), std::move(elements));
  }
  IRHINT_RETURN_NOT_OK(corpus.Finalize());
  return corpus;
}

}  // namespace irhint

#include "data/serialize.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/checked_math.h"
#include "storage/snapshot_format.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  SnapshotWriter writer;
  IRHINT_RETURN_NOT_OK(writer.Open(path, SnapshotKind::kCorpus));

  writer.BeginSection(kSectionMeta);
  writer.WriteU64(corpus.size());
  writer.WriteU64(corpus.domain_end());
  writer.WriteU64(corpus.dictionary().size());
  IRHINT_RETURN_NOT_OK(writer.EndSection());

  // Dictionary: frequencies always; term strings when the dictionary is
  // textual (interned ids are dense, so position i holds term i).
  const Dictionary& dict = corpus.dictionary();
  const bool textual = dict.size() > 0 && !dict.Term(0).empty();
  writer.BeginSection(kSectionDictionary);
  writer.WriteU8(textual ? 1 : 0);
  writer.WriteVector(dict.frequencies());
  if (textual) {
    for (size_t e = 0; e < dict.size(); ++e) {
      writer.WriteString(dict.Term(static_cast<ElementId>(e)));
    }
  }
  IRHINT_RETURN_NOT_OK(writer.EndSection());

  writer.BeginSection(kSectionObjects);
  for (const Object& o : corpus.objects()) {
    writer.WriteU64(o.interval.st);
    writer.WriteU64(o.interval.end);
    writer.WriteVector(o.elements);
  }
  IRHINT_RETURN_NOT_OK(writer.EndSection());
  return writer.Finish();
}

StatusOr<Corpus> LoadCorpus(const std::string& path) {
  SnapshotReader reader;
  IRHINT_RETURN_NOT_OK(reader.Open(path));
  if (reader.kind() != static_cast<uint32_t>(SnapshotKind::kCorpus)) {
    return Status::Corruption("snapshot is not a corpus: " + path);
  }

  auto meta = reader.OpenSection(kSectionMeta);
  IRHINT_RETURN_NOT_OK(meta.status());
  uint64_t count = 0, domain_end = 0, dict_size = 0;
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&count));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&domain_end));
  IRHINT_RETURN_NOT_OK(meta->ReadU64(&dict_size));

  auto dict_cursor = reader.OpenSection(kSectionDictionary);
  IRHINT_RETURN_NOT_OK(dict_cursor.status());
  uint8_t textual = 0;
  std::vector<uint64_t> frequencies;
  IRHINT_RETURN_NOT_OK(dict_cursor->ReadU8(&textual));
  IRHINT_RETURN_NOT_OK(dict_cursor->ReadVector(&frequencies));
  // The stored frequency vector always has one slot per element, and its
  // length is bounded by the section payload — so this check also caps
  // dict_size before anything allocates proportional to it.
  if (frequencies.size() != dict_size) {
    return Status::Corruption("dictionary size disagrees with frequency "
                              "vector in " + path);
  }
  Dictionary dict;
  if (textual != 0) {
    for (uint64_t e = 0; e < dict_size; ++e) {
      std::string term;
      IRHINT_RETURN_NOT_OK(dict_cursor->ReadString(&term));
      dict.AddTerm(term);
    }
    if (dict.size() != dict_size) {
      return Status::Corruption("duplicate dictionary terms in " + path);
    }
  } else {
    dict = Dictionary::MakeAnonymous(dict_size);
  }

  Corpus corpus;
  corpus.set_dictionary(std::move(dict));
  corpus.DeclareDomain(domain_end);

  auto objects = reader.OpenSection(kSectionObjects);
  IRHINT_RETURN_NOT_OK(objects.status());
  // 24 = minimum bytes per object record (st + end + element count); an
  // on-disk count that could not fit in the section is an allocation bomb.
  if (!FitsInBytes(count, 24, objects->remaining())) {
    return Status::Corruption("object count out of bounds in " + path);
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t st, end;
    std::vector<ElementId> elements;
    IRHINT_RETURN_NOT_OK(objects->ReadU64(&st));
    IRHINT_RETURN_NOT_OK(objects->ReadU64(&end));
    IRHINT_RETURN_NOT_OK(objects->ReadVector(&elements));
    if (st > end || end > domain_end || elements.size() > dict_size) {
      return Status::Corruption("invalid object in " + path);
    }
    for (ElementId e : elements) {
      // Element ids index the dictionary (and later the frequency and
      // postings arrays); an out-of-range id must die here, at the decode
      // boundary, not as an out-of-bounds write in Finalize().
      if (e >= dict_size) {
        return Status::Corruption("object element outside the dictionary "
                                  "in " + path);
      }
    }
    corpus.Append(Interval(st, end), std::move(elements));
  }
  IRHINT_RETURN_NOT_OK(corpus.Finalize());
  return corpus;
}

}  // namespace irhint

#include "data/real_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/flat_hash_map.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace irhint {

namespace {

// Shared construction: exponential durations with a target mean fraction of
// the domain, uniform positions, log-normal description sizes, Zipf element
// tail with an optional near-universal "stopword" tier.
struct RealSimSpec {
  uint64_t cardinality;
  Time domain_end;
  // Interval durations are a short/long mixture: most objects are short
  // (sessions of minutes, article versions superseded within days —
  // exponential with mean short_mean_seconds), while a fraction of
  // long-lived objects spans a large part of the domain (uniform in
  // [long_lo, long_hi] x domain). This reproduces both the published mean
  // duration (% of domain) and the heavy skew of Figure 7.
  double long_fraction;
  double long_lo;
  double long_hi;
  double short_mean_seconds;
  uint64_t dictionary_size;
  double desc_lognormal_mu;
  double desc_lognormal_sigma;
  uint64_t desc_max;
  double zipf_zeta;
  // Inclusion probabilities of the stopword tier (element ids 0..k-1).
  std::vector<double> stopwords;
};

Corpus BuildRealSim(const RealSimSpec& spec, uint64_t seed) {
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(spec.dictionary_size));
  corpus.DeclareDomain(spec.domain_end);

  Rng rng(seed);
  const uint64_t num_stop = spec.stopwords.size();
  const uint64_t tail_size = spec.dictionary_size - num_stop;
  const ZipfSampler tail_sampler(tail_size, spec.zipf_zeta);
  const double domain_size = static_cast<double>(spec.domain_end) + 1.0;

  std::vector<ElementId> elements;
  FlatHashSet<ElementId> seen;
  for (uint64_t i = 0; i < spec.cardinality; ++i) {
    // Duration: short/long mixture (see RealSimSpec).
    uint64_t duration;
    if (rng.NextBool(spec.long_fraction)) {
      const double frac =
          spec.long_lo + rng.NextDouble() * (spec.long_hi - spec.long_lo);
      duration = static_cast<uint64_t>(frac * domain_size);
    } else {
      double u = rng.NextDouble();
      while (u <= 1e-300) u = rng.NextDouble();
      duration =
          static_cast<uint64_t>(-spec.short_mean_seconds * std::log(u));
    }
    duration = std::clamp<uint64_t>(duration, 1,
                                    static_cast<uint64_t>(domain_size));
    // Position: uniform over the feasible range.
    const Time t_st = static_cast<Time>(
        rng.Uniform(spec.domain_end + 2 - duration));
    const Time t_end = t_st + duration - 1;

    // Description size: log-normal, clamped.
    const double dsize = std::exp(spec.desc_lognormal_mu +
                                  spec.desc_lognormal_sigma *
                                      rng.NextGaussian());
    const uint64_t target = std::clamp<uint64_t>(
        static_cast<uint64_t>(dsize), 1,
        std::min(spec.desc_max, spec.dictionary_size));

    elements.clear();
    seen.clear();
    // Stopword tier: near-universal elements.
    for (uint64_t s = 0; s < num_stop && elements.size() < target; ++s) {
      if (rng.NextBool(spec.stopwords[s])) {
        elements.push_back(static_cast<ElementId>(s));
        seen.insert(static_cast<ElementId>(s));
      }
    }
    // Zipf tail, distinct draws (bounded attempts: with heavy skew, the
    // same head elements repeat).
    uint64_t attempts = 0;
    const uint64_t max_attempts = 8 * target + 64;
    while (elements.size() < target && attempts < max_attempts) {
      ++attempts;
      const ElementId e = static_cast<ElementId>(
          num_stop + tail_sampler.Sample(rng) - 1);
      if (seen.insert(e)) elements.push_back(e);
    }
    corpus.Append(Interval(t_st, t_end), elements);
  }
  const Status st = corpus.Finalize();
  assert(st.ok());
  (void)st;
  return corpus;
}

uint64_t Scaled(uint64_t full, double scale, uint64_t min_value) {
  const double scaled = static_cast<double>(full) * scale;
  return std::max<uint64_t>(min_value, static_cast<uint64_t>(scaled));
}

}  // namespace

Corpus MakeEclogLike(double scale, uint64_t seed) {
  assert(scale > 0.0 && scale <= 1.0);
  RealSimSpec spec;
  spec.cardinality = Scaled(kEclogFullCardinality, scale, 1000);
  spec.domain_end = 15807599 - 1;  // Table 3: 15,807,599 seconds
  // ~13.4% long-lived "bot" sessions spanning 25-100% of the half-year
  // domain, the rest ~30-minute browsing sessions; mean duration ~8.4% of
  // the domain as in Table 3.
  spec.long_fraction = 0.134;
  spec.long_lo = 0.25;
  spec.long_hi = 1.0;
  spec.short_mean_seconds = 1800.0;
  spec.dictionary_size = Scaled(178478, scale, 2000);
  // Log-normal with mean ~72 and a tail reaching the published max ~14399.
  spec.desc_lognormal_sigma = 1.4;
  spec.desc_lognormal_mu = std::log(72.0) - 0.5 * 1.4 * 1.4;
  spec.desc_max = 14399;
  // zeta tuned so the most frequent element appears in ~47% of objects
  // (Table 3: max frequency 140423 of 300311).
  spec.zipf_zeta = 0.7;
  return BuildRealSim(spec, seed);
}

Corpus MakeWikipediaLike(double scale, uint64_t seed) {
  assert(scale > 0.0 && scale <= 1.0);
  RealSimSpec spec;
  spec.cardinality = Scaled(kWikipediaFullCardinality, scale, 1000);
  spec.domain_end = 126230391 - 1;  // Table 3: 126,230,391 seconds
  // ~8.2% of versions live for 25-100% of the 4-year crawl (rarely edited
  // articles); the rest are superseded within ~2 days on average; mean
  // duration ~5.2% of the domain as in Table 3.
  spec.long_fraction = 0.082;
  spec.long_lo = 0.25;
  spec.long_hi = 1.0;
  spec.short_mean_seconds = 172800.0;
  spec.dictionary_size = Scaled(927283, scale, 4000);
  // Log-normal with mean ~367 and max near the published 6982.
  spec.desc_lognormal_sigma = 0.8;
  spec.desc_lognormal_mu = std::log(367.0) - 0.5 * 0.8 * 0.8;
  spec.desc_max = 6982;
  // Near-universal stopword tier reproduces the published max element
  // frequency of ~99.9% of objects.
  spec.stopwords = {0.999, 0.92, 0.85, 0.78, 0.7, 0.6, 0.5, 0.4};
  spec.zipf_zeta = 0.65;
  return BuildRealSim(spec, seed);
}

}  // namespace irhint

#include "data/dictionary.h"

#include <algorithm>
#include <cassert>

#include "common/checked_math.h"

namespace irhint {

Dictionary Dictionary::MakeAnonymous(size_t size) {
  Dictionary d;
  d.size_ = size;
  return d;
}

ElementId Dictionary::AddTerm(std::string_view term) {
  std::string key(term);
  if (const ElementId* existing = term_to_id_.find(key)) return *existing;
  const ElementId id = static_cast<ElementId>(size_);
  term_to_id_.insert_or_assign(key, id);
  terms_.push_back(std::move(key));
  ++size_;
  return id;
}

ElementId Dictionary::LookupTerm(std::string_view term) const {
  const ElementId* found = term_to_id_.find(std::string(term));
  return found != nullptr ? *found : kInvalidElement;
}

const std::string& Dictionary::Term(ElementId e) const {
  static const std::string kEmpty;
  return e < terms_.size() ? terms_[e] : kEmpty;
}

void Dictionary::SetFrequencies(std::vector<uint64_t> frequencies) {
  assert(frequencies.size() >= size_ || frequencies.empty());
  frequencies_ = std::move(frequencies);
}

void Dictionary::BumpFrequency(ElementId e, uint64_t delta) {
  // GrowToFit widens before the increment: e + 1 in ElementId width
  // wraps to 0 at the max id (the PR 4 OOB-write bug class).
  if (e >= frequencies_.size()) {
    frequencies_.resize(GrowToFit(e), 0);
  }
  frequencies_[e] += delta;
}

void Dictionary::SortByFrequency(std::vector<ElementId>* elements) const {
  std::sort(elements->begin(), elements->end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });
}

}  // namespace irhint

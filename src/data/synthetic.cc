#include "data/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "common/zipf.h"

namespace irhint {

Corpus GenerateSynthetic(const SyntheticParams& params) {
  assert(params.cardinality > 0);
  assert(params.domain > 1);
  assert(params.dictionary_size > 0);
  Corpus corpus;
  corpus.set_dictionary(Dictionary::MakeAnonymous(params.dictionary_size));
  corpus.DeclareDomain(params.domain - 1);

  Rng rng(params.seed);
  const ZipfSampler duration_sampler(params.domain, params.alpha);
  const ZipfSampler element_sampler(params.dictionary_size, params.zeta);

  const double mid_domain = static_cast<double>(params.domain) / 2.0;
  const uint32_t desc_size = std::min<uint64_t>(
      params.description_size, params.dictionary_size);

  std::vector<ElementId> elements;
  for (uint64_t i = 0; i < params.cardinality; ++i) {
    // Duration: Zipf over [1, domain]; small alpha yields long intervals.
    const uint64_t duration =
        std::min<uint64_t>(duration_sampler.Sample(rng), params.domain);

    // Midpoint: normal around the middle of the domain.
    const double mid =
        mid_domain + rng.NextGaussian() * static_cast<double>(params.sigma);
    int64_t st = static_cast<int64_t>(std::llround(mid)) -
                 static_cast<int64_t>(duration / 2);
    const int64_t max_st =
        static_cast<int64_t>(params.domain) - static_cast<int64_t>(duration);
    st = std::clamp<int64_t>(st, 0, std::max<int64_t>(0, max_st));
    const Time t_st = static_cast<Time>(st);
    const Time t_end = t_st + duration - 1;

    // Description: desc_size distinct Zipf(zeta) elements. Element ids are
    // frequency ranks minus one (id 0 is the most frequent element).
    elements.clear();
    while (elements.size() < desc_size) {
      const ElementId e =
          static_cast<ElementId>(element_sampler.Sample(rng) - 1);
      if (std::find(elements.begin(), elements.end(), e) == elements.end()) {
        elements.push_back(e);
      }
    }
    corpus.Append(Interval(t_st, t_end), elements);
  }
  const Status st = corpus.Finalize();
  assert(st.ok());
  (void)st;
  return corpus;
}

}  // namespace irhint

// Binary corpus serialization, so generated workloads can be cached on disk
// and shared between bench runs.

#ifndef IRHINT_DATA_SERIALIZE_H_
#define IRHINT_DATA_SERIALIZE_H_

#include <string>

#include "common/contracts.h"
#include "common/status.h"
#include "data/corpus.h"

namespace irhint {

/// \brief Write the corpus (objects + declared domain + dictionary size) to
/// `path` in a little-endian binary format.
Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// \brief Load a corpus written by SaveCorpus. The dictionary is anonymous
/// (term strings are not persisted); frequencies are recomputed.
IRHINT_UNTRUSTED StatusOr<Corpus> LoadCorpus(const std::string& path);

}  // namespace irhint

#endif  // IRHINT_DATA_SERIALIZE_H_

// Synthetic corpus generator following the paper's Section 5.1 / Table 4:
// interval durations are Zipf(alpha)-distributed, interval midpoints follow
// a normal distribution centered in the middle of the domain with deviation
// sigma, and object descriptions draw |d| distinct elements from a
// dictionary with Zipf(zeta) element frequencies.

#ifndef IRHINT_DATA_SYNTHETIC_H_
#define IRHINT_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/corpus.h"

namespace irhint {

/// \brief Table 4 parameters (paper defaults in comments; bench binaries
/// scale cardinality down via IRHINT_SCALE).
struct SyntheticParams {
  uint64_t cardinality = 1'000'000;     ///< 100K..10M, default 1M
  uint64_t domain = 128'000'000;        ///< 32M..512M, default 128M
  double alpha = 1.2;                   ///< interval duration skew, 1.01..1.8
  uint64_t sigma = 1'000'000;           ///< midpoint deviation, 10K..10M
  uint64_t dictionary_size = 100'000;   ///< 10K..1M, default 100K
  uint32_t description_size = 10;       ///< |d|, 5..500, default 10
  double zeta = 1.5;                    ///< element frequency skew, 1.0..2.0
  uint64_t seed = 42;
};

/// \brief Generate a finalized corpus. Deterministic in the seed.
Corpus GenerateSynthetic(const SyntheticParams& params);

}  // namespace irhint

#endif  // IRHINT_DATA_SYNTHETIC_H_

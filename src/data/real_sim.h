// Simulators for the paper's two real-world datasets.
//
// The originals (ECLOG e-commerce sessions from Harvard Dataverse and a
// Wikipedia revision crawl via the MediaWiki API) are not redistributable
// here, so we generate synthetic corpora matching the published statistics
// of Table 3: cardinality, time-domain span, interval-duration distribution
// (mean % of domain, minimum 1 second), dictionary size, description-size
// distribution (log-normal tails matching the published min/avg/max) and
// element-frequency skew (Zipf, tuned so the most frequent element covers
// the published fraction of objects — ~47% for ECLOG; WIKIPEDIA additionally
// gets a handful of near-universal "stopword" elements, reproducing its
// max frequency of ~99.9% of objects). The indexing methods only observe
// (interval, element-set) shapes, so matching these marginals preserves
// the relative index behaviour; see DESIGN.md §5.

#ifndef IRHINT_DATA_REAL_SIM_H_
#define IRHINT_DATA_REAL_SIM_H_

#include "data/corpus.h"

namespace irhint {

/// \brief Full-size cardinalities of the original datasets (Table 3).
inline constexpr uint64_t kEclogFullCardinality = 300311;
inline constexpr uint64_t kWikipediaFullCardinality = 1672662;

/// \brief ECLOG-like corpus. `scale` in (0, 1] multiplies the cardinality
/// and dictionary size (1.0 reproduces Table 3's sizes).
Corpus MakeEclogLike(double scale, uint64_t seed = 7);

/// \brief WIKIPEDIA-like corpus. `scale` as above. Note: at scale 1.0 this
/// corpus holds ~614M postings; bench binaries default to a small scale.
Corpus MakeWikipediaLike(double scale, uint64_t seed = 11);

}  // namespace irhint

#endif  // IRHINT_DATA_REAL_SIM_H_

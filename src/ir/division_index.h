// Division-level inverted indexes — the structures irHINT injects into
// every HINT partition division (Section 4).
//
//  * DivisionTif: a temporal inverted file scoped to one (sub)division; the
//    performance variant answers a mode-restricted time-travel IR query
//    directly inside the division (Algorithm 5 / QueryTemporalIF).
//  * DivisionIdIndex: an id-only inverted index per division; the size
//    variant intersects externally computed temporal candidates against it
//    (Algorithm 6 / QueryIF).
//
// Storage layout: a read-optimized CSR core (sorted element keys, offsets,
// one contiguous postings array) plus a small mutable delta for online
// inserts — the classic main+delta design. Because object ids only grow
// (Section 5.5), every id in the delta is larger than every id in the core,
// so scanning core-then-delta yields an id-sorted stream without merging.
// Build paths accumulate into the delta and call Finalize() once to compact
// it into the core.

#ifndef IRHINT_IR_DIVISION_INDEX_H_
#define IRHINT_IR_DIVISION_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/flat_hash_map.h"
#include "common/status.h"
#include "core/integrity.h"
#include "core/query_counters.h"
#include "data/object.h"
#include "hint/traversal.h"
#include "ir/postings.h"
#include "storage/flat_array.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

/// \brief CSR + delta postings storage, generic over the entry payload.
/// Entry must expose an ObjectId `id` field (Posting or IdEntry below).
/// Keepalive for mmap-backed FlatArrays: the owning index's
/// storage_keepalive_, one level up (irhint-view-lifetime contract).
template <typename Entry>
class IRHINT_KEEPALIVE_EXTERNAL DivisionPostings {
 public:
  /// \brief Append one entry per element (into the delta). Object ids must
  /// arrive in increasing order.
  void Add(const Entry& entry, const std::vector<ElementId>& elements) {
    for (ElementId e : elements) {
      uint32_t slot;
      if (const uint32_t* found = delta_slot_.find(e)) {
        slot = *found;
      } else {
        slot = static_cast<uint32_t>(delta_lists_.size());
        delta_slot_.insert_or_assign(e, slot);
        delta_lists_.emplace_back();
      }
      delta_lists_[slot].push_back(entry);
      ++num_postings_;
    }
  }

  /// \brief Compact the delta into the CSR core. Idempotent; called once
  /// after a bulk build (queries work without it, just slower).
  void Finalize() {
    if (delta_slot_.empty()) return;
    // Gather (key, delta slot) pairs sorted by key.
    std::vector<std::pair<ElementId, uint32_t>> items;
    items.reserve(delta_slot_.size());
    delta_slot_.ForEach([&items](const ElementId& e, const uint32_t& slot) {
      items.emplace_back(e, slot);
    });
    std::sort(items.begin(), items.end());

    // Merge with the existing core (usually empty at build time).
    std::vector<ElementId> keys;
    std::vector<uint32_t> offsets;
    std::vector<Entry> postings;
    keys.reserve(keys_.size() + items.size());
    postings.reserve(postings_.size() + num_postings_);
    size_t core_pos = 0;
    auto flush_core_until = [&](ElementId bound) {
      while (core_pos < keys_.size() && keys_[core_pos] < bound) {
        keys.push_back(keys_[core_pos]);
        offsets.push_back(static_cast<uint32_t>(postings.size()));
        postings.insert(postings.end(),
                        postings_.begin() + offsets_[core_pos],
                        postings_.begin() + offsets_[core_pos + 1]);
        ++core_pos;
      }
    };
    for (const auto& [e, slot] : items) {
      flush_core_until(e);
      keys.push_back(e);
      offsets.push_back(static_cast<uint32_t>(postings.size()));
      if (core_pos < keys_.size() && keys_[core_pos] == e) {
        postings.insert(postings.end(),
                        postings_.begin() + offsets_[core_pos],
                        postings_.begin() + offsets_[core_pos + 1]);
        ++core_pos;
      }
      postings.insert(postings.end(), delta_lists_[slot].begin(),
                      delta_lists_[slot].end());
    }
    flush_core_until(static_cast<ElementId>(-1));
    if (core_pos < keys_.size()) {  // the max key itself
      keys.push_back(keys_[core_pos]);
      offsets.push_back(static_cast<uint32_t>(postings.size()));
      postings.insert(postings.end(), postings_.begin() + offsets_[core_pos],
                      postings_.end());
    }
    offsets.push_back(static_cast<uint32_t>(postings.size()));

    keys_ = std::move(keys);
    offsets_ = std::move(offsets);
    postings_ = std::move(postings);
    keys_.shrink_to_fit();
    offsets_.shrink_to_fit();
    postings_.shrink_to_fit();
    delta_slot_.clear();
    delta_lists_.clear();
  }

  /// \brief Visit the id-ordered live stream of element e's postings:
  /// core range first, then delta. fn(const Entry&) returning false stops.
  template <typename Fn>
  void ScanList(ElementId e, Fn&& fn) const {
    const size_t pos = KeyPosition(e);
    if (pos != kNotFound) {
      for (uint32_t i = offsets_[pos]; i < offsets_[pos + 1]; ++i) {
        if (postings_[i].id == kTombstoneId) continue;
        if (!fn(postings_[i])) return;
      }
    }
    if (const uint32_t* slot = delta_slot_.find(e)) {
      for (const Entry& entry : delta_lists_[*slot]) {
        if (entry.id == kTombstoneId) continue;
        if (!fn(entry)) return;
      }
    }
  }

  /// \brief True iff element e has any (possibly tombstoned) postings.
  bool HasElement(ElementId e) const {
    return KeyPosition(e) != kNotFound || delta_slot_.find(e) != nullptr;
  }

  /// \brief Number of postings stored for element e (incl. tombstones).
  size_t ListLength(ElementId e) const {
    size_t n = 0;
    const size_t pos = KeyPosition(e);
    if (pos != kNotFound) n += offsets_[pos + 1] - offsets_[pos];
    if (const uint32_t* slot = delta_slot_.find(e)) {
      n += delta_lists_[*slot].size();
    }
    return n;
  }

  /// \brief True while no tombstones exist, i.e. the id order inside core
  /// ranges and delta lists is intact and binary probing is sound.
  bool CanProbe() const { return num_list_tombstones_ == 0; }

  /// \brief Binary-probe element e's postings for `id` (requires
  /// CanProbe()). Returns the entry or nullptr.
  const Entry* Probe(ElementId e, ObjectId id) const {
    const size_t pos = KeyPosition(e);
    if (pos != kNotFound) {
      const Entry* begin = postings_.data() + offsets_[pos];
      const Entry* end = postings_.data() + offsets_[pos + 1];
      const Entry* it = std::lower_bound(
          begin, end, id,
          [](const Entry& entry, ObjectId v) { return entry.id < v; });
      if (it != end && it->id == id) return it;
    }
    if (const uint32_t* slot = delta_slot_.find(e)) {
      const auto& list = delta_lists_[*slot];
      const auto it = std::lower_bound(
          list.begin(), list.end(), id,
          [](const Entry& entry, ObjectId v) { return entry.id < v; });
      if (it != list.end() && it->id == id) return &*it;
    }
    return nullptr;
  }

  /// \brief Tombstone id's posting under each element; returns the count.
  size_t Tombstone(ObjectId id, const std::vector<ElementId>& elements) {
    size_t tombstoned = 0;

    for (ElementId e : elements) {
      const size_t pos = KeyPosition(e);
      bool done = false;
      if (pos != kNotFound) {
        for (uint32_t i = offsets_[pos]; i < offsets_[pos + 1]; ++i) {
          if (postings_[i].id == id) {
            postings_.MutableData()[i].id = kTombstoneId;
            ++tombstoned;
            done = true;
            break;
          }
        }
      }
      if (done) continue;
      if (const uint32_t* slot = delta_slot_.find(e)) {
        for (Entry& entry : delta_lists_[*slot]) {
          if (entry.id == id) {
            entry.id = kTombstoneId;
            ++tombstoned;
            break;
          }
        }
      }
    }
    num_list_tombstones_ += tombstoned;
    return tombstoned;
  }

  size_t NumPostings() const { return num_postings_; }

  /// \brief Audit the CSR+delta invariants (Section 5.5 / DESIGN.md §9):
  /// sorted unique keys, a well-formed offsets array, per-list id order
  /// (raw order when no tombstones exist — the probe soundness condition —
  /// and live-subsequence order otherwise), delta keys in range, delta ids
  /// above core ids per element, and exact posting/tombstone bookkeeping.
  /// `element_limit` bounds the element-id universe (dictionary range);
  /// pass kNoElementLimit when the owner has no dictionary.
  static constexpr uint64_t kNoElementLimit = ~uint64_t{0};
  Status CheckStructure(CheckLevel level,
                        uint64_t element_limit = kNoElementLimit) const {
    // Shape: keys sorted strictly increasing and inside the dictionary.
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (i > 0 && keys_[i] <= keys_[i - 1]) {
        return Status::Corruption("division keys not strictly increasing");
      }
      if (keys_[i] >= element_limit) {
        return Status::Corruption("division key outside dictionary range");
      }
    }
    if (offsets_.size() != (keys_.empty() ? 0 : keys_.size() + 1)) {
      return Status::Corruption("division offsets size mismatch");
    }
    if (!offsets_.empty()) {
      if (offsets_[0] != 0) {
        return Status::Corruption("division offsets do not start at 0");
      }
      for (size_t i = 1; i < offsets_.size(); ++i) {
        if (offsets_[i] < offsets_[i - 1]) {
          return Status::Corruption("division offsets decrease");
        }
      }
      if (offsets_.back() != postings_.size()) {
        return Status::Corruption("division offsets do not cover postings");
      }
    } else if (!postings_.empty()) {
      return Status::Corruption("division postings without keys");
    }
    if (delta_slot_.size() != delta_lists_.size()) {
      return Status::Corruption("division delta slot/list count mismatch");
    }
    // Bookkeeping: every entry ever added is still stored somewhere.
    size_t stored = postings_.size();
    for (const auto& list : delta_lists_) stored += list.size();
    if (stored != num_postings_) {
      return Status::Corruption("division posting count mismatch");
    }
    if (level == CheckLevel::kQuick) return Status::OK();

    // Deep: per-list id order and the tombstone census.
    size_t tombstones = 0;
    auto check_list = [&](const Entry* begin, const Entry* end) -> Status {
      ObjectId prev_raw = 0;
      ObjectId prev_live = 0;
      bool have_raw = false;
      bool have_live = false;
      for (const Entry* it = begin; it != end; ++it) {
        if (it->id == kTombstoneId) {
          ++tombstones;
        } else {
          if (have_live && it->id <= prev_live) {
            return Status::Corruption("division postings not id-sorted");
          }
          prev_live = it->id;
          have_live = true;
        }
        // Probe soundness: with zero recorded tombstones even the raw
        // order must be intact (Probe() binary-searches raw entries).
        if (num_list_tombstones_ == 0) {
          if (have_raw && it->id <= prev_raw) {
            return Status::Corruption(
                "division postings raw order broken with CanProbe() set");
          }
          prev_raw = it->id;
          have_raw = true;
        }
      }
      return Status::OK();
    };
    for (size_t k = 0; k + 1 < offsets_.size(); ++k) {
      IRHINT_RETURN_NOT_OK(check_list(postings_.data() + offsets_[k],
                                      postings_.data() + offsets_[k + 1]));
    }
    Status delta_status = Status::OK();
    std::vector<bool> slot_seen(delta_lists_.size(), false);
    delta_slot_.ForEach([&](const ElementId& e, const uint32_t& slot) {
      if (!delta_status.ok()) return;
      if (e >= element_limit) {
        delta_status =
            Status::Corruption("division delta key outside dictionary range");
        return;
      }
      if (slot >= delta_lists_.size() || slot_seen[slot]) {
        delta_status = Status::Corruption("division delta slot map broken");
        return;
      }
      slot_seen[slot] = true;
      const auto& list = delta_lists_[slot];
      delta_status = check_list(list.data(), list.data() + list.size());
      if (!delta_status.ok()) return;
      // Main+delta contract: ids only grow, so every live delta id lies
      // above every live core id of the same element.
      const size_t pos = KeyPosition(e);
      if (pos != kNotFound) {
        ObjectId core_max = 0;
        bool have_core = false;
        for (uint32_t i = offsets_[pos]; i < offsets_[pos + 1]; ++i) {
          if (postings_[i].id != kTombstoneId) {
            core_max = postings_[i].id;
            have_core = true;
          }
        }
        if (have_core) {
          for (const Entry& entry : list) {
            if (entry.id != kTombstoneId && entry.id <= core_max) {
              delta_status =
                  Status::Corruption("division delta id below core ids");
              return;
            }
          }
        }
      }
    });
    IRHINT_RETURN_NOT_OK(delta_status);
    if (tombstones != num_list_tombstones_) {
      return Status::Corruption("division tombstone count mismatch");
    }
    return Status::OK();
  }

  /// \brief Visit every stored entry with its element: fn(ElementId,
  /// const Entry&) -> Status; a non-OK return stops and propagates.
  /// Tombstoned entries are included (their payload beyond `id` is intact).
  template <typename Fn>
  Status ForEachEntry(Fn&& fn) const {
    for (size_t k = 0; k + 1 < offsets_.size(); ++k) {
      for (uint32_t i = offsets_[k]; i < offsets_[k + 1]; ++i) {
        IRHINT_RETURN_NOT_OK(fn(keys_[k], postings_[i]));
      }
    }
    Status status = Status::OK();
    delta_slot_.ForEach([&](const ElementId& e, const uint32_t& slot) {
      if (!status.ok() || slot >= delta_lists_.size()) return;
      for (const Entry& entry : delta_lists_[slot]) {
        status = fn(e, entry);
        if (!status.ok()) return;
      }
    });
    return status;
  }

  size_t MemoryUsageBytes() const {
    size_t bytes = keys_.MemoryUsageBytes();
    bytes += offsets_.MemoryUsageBytes();
    bytes += postings_.MemoryUsageBytes();
    bytes += delta_slot_.MemoryUsageBytes();
    bytes += delta_lists_.capacity() * sizeof(std::vector<Entry>);
    for (const auto& list : delta_lists_) {
      bytes += list.capacity() * sizeof(Entry);
    }
    return bytes;
  }

  /// \brief Serialize into the section currently open on `writer`: the CSR
  /// core as three arrays (views of the mapping on the mmap load path),
  /// then the delta as sorted (key, list) pairs, then the counters.
  void SaveTo(SnapshotWriter* writer) const {
    writer->WriteFlatArray(keys_);
    writer->WriteFlatArray(offsets_);
    writer->WriteFlatArray(postings_);
    std::vector<std::pair<ElementId, uint32_t>> items;
    items.reserve(delta_slot_.size());
    delta_slot_.ForEach([&items](const ElementId& e, const uint32_t& slot) {
      items.emplace_back(e, slot);
    });
    std::sort(items.begin(), items.end());
    writer->WriteU64(items.size());
    for (const auto& [e, slot] : items) {
      writer->WriteU32(e);
      writer->WriteVector(delta_lists_[slot]);
    }
    writer->WriteU64(num_postings_);
    writer->WriteU64(num_list_tombstones_);
  }

  IRHINT_UNTRUSTED Status LoadFrom(SectionCursor* cursor) {
    IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&keys_));
    IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&offsets_));
    IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&postings_));
    if (offsets_.size() != (keys_.empty() ? 0 : keys_.size() + 1) ||
        (!offsets_.empty() && offsets_.back() > postings_.size())) {
      return Status::Corruption("division postings CSR shape mismatch");
    }
    uint64_t num_delta = 0;
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_delta));
    delta_slot_.clear();
    delta_lists_.clear();
    for (uint64_t i = 0; i < num_delta; ++i) {
      ElementId e = 0;
      IRHINT_RETURN_NOT_OK(cursor->ReadU32(&e));
      std::vector<Entry> list;
      IRHINT_RETURN_NOT_OK(cursor->ReadVector(&list));
      delta_slot_.insert_or_assign(e,
                                   static_cast<uint32_t>(delta_lists_.size()));
      delta_lists_.push_back(std::move(list));
    }
    uint64_t num_postings, num_tombstones;
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_postings));
    IRHINT_RETURN_NOT_OK(cursor->ReadU64(&num_tombstones));
    num_postings_ = static_cast<size_t>(num_postings);
    num_list_tombstones_ = static_cast<size_t>(num_tombstones);
    return Status::OK();
  }

 private:
  friend struct IntegrityTestPeer;

  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  size_t KeyPosition(ElementId e) const {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), e);
    if (it == keys_.end() || *it != e) return kNotFound;
    return static_cast<size_t>(it - keys_.begin());
  }

  // CSR core. FlatArrays so a snapshot load can alias the mapping
  // (zero-copy) while built/mutated indexes own plain vectors.
  FlatArray<ElementId> keys_;   // sorted unique element ids
  FlatArray<uint32_t> offsets_; // keys_.size() + 1 offsets into postings_
  FlatArray<Entry> postings_;
  // Mutable delta for online inserts.
  FlatHashMap<ElementId, uint32_t> delta_slot_;
  std::vector<std::vector<Entry>> delta_lists_;
  size_t num_postings_ = 0;
  size_t num_list_tombstones_ = 0;
};

/// \brief Id-only postings entry.
struct IdEntry {
  ObjectId id = 0;
};

/// \brief Reusable per-query scratch buffers. irHINT queries touch many
/// small divisions; reusing these across divisions avoids one pair of heap
/// allocations per division.
struct DivisionQueryScratch {
  std::vector<ObjectId> candidates;
  std::vector<ObjectId> next;
  // Per-query work tally, filled by the division queries only when the
  // owning index sets `count` (so disabled counters skip even the
  // list-length lookups).
  bool count = false;
  QueryCounters counters;
};

/// \brief Temporal inverted file scoped to one HINT (sub)division.
class DivisionTif {
 public:
  /// \brief Append one posting per element (ids arrive in increasing order).
  void Add(ObjectId id, const Interval& interval,
           const std::vector<ElementId>& elements);

  /// \brief Compact after a bulk build.
  void Finalize() { postings_.Finalize(); }

  /// \brief QueryTemporalIF (Algorithm 5): time-travel IR query restricted
  /// to this division, with the temporal conditions selected by `mode`.
  /// `elements` must be pre-sorted by ascending global frequency and
  /// non-empty. Results are appended to out in id order.
  void Query(const std::vector<ElementId>& elements, const Interval& q,
             CheckMode mode, DivisionQueryScratch* scratch,
             std::vector<ObjectId>* out) const;

  /// \brief Tombstone the postings of `id` under the given elements.
  size_t Tombstone(ObjectId id, const std::vector<ElementId>& elements) {
    return postings_.Tombstone(id, elements);
  }

  size_t NumPostings() const { return postings_.NumPostings(); }
  size_t MemoryUsageBytes() const { return postings_.MemoryUsageBytes(); }

  void SaveTo(SnapshotWriter* writer) const { postings_.SaveTo(writer); }
  IRHINT_UNTRUSTED Status LoadFrom(SectionCursor* cursor) {
    return postings_.LoadFrom(cursor);
  }

  /// \brief Audit the underlying postings structure; see
  /// DivisionPostings::CheckStructure.
  Status CheckStructure(CheckLevel level,
                        uint64_t element_limit =
                            DivisionPostings<Posting>::kNoElementLimit) const {
    return postings_.CheckStructure(level, element_limit);
  }

  /// \brief Visit every stored posting: fn(ElementId, const Posting&) ->
  /// Status (tombstones included; their endpoints stay intact).
  template <typename Fn>
  Status ForEachEntry(Fn&& fn) const {
    return postings_.ForEachEntry(std::forward<Fn>(fn));
  }

 private:
  friend struct IntegrityTestPeer;

  DivisionPostings<Posting> postings_;
};

/// \brief Id-only inverted index scoped to one HINT division.
class DivisionIdIndex {
 public:
  /// \brief Append one id per element (ids arrive in increasing order).
  void Add(ObjectId id, const std::vector<ElementId>& elements) {
    postings_.Add(IdEntry{id}, elements);
  }

  /// \brief Compact after a bulk build.
  void Finalize() { postings_.Finalize(); }

  /// \brief QueryIF (Algorithm 6): intersect the sorted temporal candidate
  /// set with the postings of every query element, in merge fashion.
  /// Results are appended to out in id order.
  void Intersect(const std::vector<ObjectId>& sorted_candidates,
                 const std::vector<ElementId>& elements,
                 DivisionQueryScratch* scratch,
                 std::vector<ObjectId>* out) const;

  /// \brief Fast path for divisions that need no temporal checks (CheckMode
  /// kNone): the candidate set is the whole division, so the result is the
  /// intersection of the query elements' own postings lists. `elements`
  /// must be pre-sorted by ascending global frequency.
  void IntersectLists(const std::vector<ElementId>& elements,
                      DivisionQueryScratch* scratch,
                      std::vector<ObjectId>* out) const;

  size_t Tombstone(ObjectId id, const std::vector<ElementId>& elements) {
    return postings_.Tombstone(id, elements);
  }

  size_t NumPostings() const { return postings_.NumPostings(); }
  size_t MemoryUsageBytes() const { return postings_.MemoryUsageBytes(); }

  void SaveTo(SnapshotWriter* writer) const { postings_.SaveTo(writer); }
  IRHINT_UNTRUSTED Status LoadFrom(SectionCursor* cursor) {
    return postings_.LoadFrom(cursor);
  }

  /// \brief Audit the underlying postings structure; see
  /// DivisionPostings::CheckStructure.
  Status CheckStructure(CheckLevel level,
                        uint64_t element_limit =
                            DivisionPostings<IdEntry>::kNoElementLimit) const {
    return postings_.CheckStructure(level, element_limit);
  }

  /// \brief Visit every stored id entry: fn(ElementId, const IdEntry&) ->
  /// Status (tombstones included).
  template <typename Fn>
  Status ForEachEntry(Fn&& fn) const {
    return postings_.ForEachEntry(std::forward<Fn>(fn));
  }

 private:
  friend struct IntegrityTestPeer;

  DivisionPostings<IdEntry> postings_;
};

}  // namespace irhint

#endif  // IRHINT_IR_DIVISION_INDEX_H_

#include "ir/tif.h"

#include <algorithm>
#include <limits>

#include "ir/intersect.h"
#include "storage/snapshot_reader.h"
#include "storage/snapshot_writer.h"

namespace irhint {

uint32_t TemporalInvertedFile::SlotFor(ElementId e) {
  if (const uint32_t* slot = element_slot_.find(e)) return *slot;
  const uint32_t slot = static_cast<uint32_t>(lists_.size());
  element_slot_.insert_or_assign(e, slot);
  lists_.emplace_back();
  live_counts_.push_back(0);
  return slot;
}

Status TemporalInvertedFile::Build(const Corpus& corpus) {
  if (corpus.domain_end() >= std::numeric_limits<StoredTime>::max()) {
    return Status::InvalidArgument("domain exceeds 32-bit stored endpoints");
  }
  domain_end_ = corpus.domain_end();
  element_slot_.reserve(corpus.dictionary().size());
  for (const Object& o : corpus.objects()) {
    IRHINT_RETURN_NOT_OK(Insert(o));
  }
  return Status::OK();
}

Status TemporalInvertedFile::Insert(const Object& object) {
  if (object.interval.st > object.interval.end) {
    return Status::InvalidArgument("interval start exceeds end");
  }
  if (object.interval.end >= std::numeric_limits<StoredTime>::max()) {
    return Status::OutOfDomain("interval exceeds 32-bit stored endpoints");
  }
  domain_end_ = std::max(domain_end_, object.interval.end);
  const Posting posting{object.id,
                        static_cast<StoredTime>(object.interval.st),
                        static_cast<StoredTime>(object.interval.end)};
  for (ElementId e : object.elements) {
    const uint32_t slot = SlotFor(e);
    // Ids arrive in increasing order, so appending keeps lists id-sorted.
    lists_[slot].push_back(posting);
    ++live_counts_[slot];
  }
  return Status::OK();
}

Status TemporalInvertedFile::Erase(const Object& object) {
  size_t tombstoned = 0;
  for (ElementId e : object.elements) {
    const uint32_t* slot = element_slot_.find(e);
    if (slot == nullptr) continue;
    FlatArray<Posting>& list = lists_[*slot];
    // Tombstoning overwrites ids in place, which breaks binary-search
    // preconditions; locate by linear scan (deletion cost tracks list
    // length, as in the paper's update study). The scan is read-only;
    // only a hit materializes a mapped list.
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].id == object.id) {
        list.MutableData()[i].id = kTombstoneId;
        --live_counts_[*slot];
        ++tombstoned;
        break;
      }
    }
  }
  return tombstoned > 0 ? Status::OK()
                        : Status::NotFound("object not present");
}

const FlatArray<Posting>* TemporalInvertedFile::List(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? &lists_[*slot] : nullptr;
}

uint64_t TemporalInvertedFile::Frequency(ElementId e) const {
  const uint32_t* slot = element_slot_.find(e);
  return slot != nullptr ? live_counts_[*slot] : 0;
}

void TemporalInvertedFile::SortByFrequency(
    std::vector<ElementId>* elements) const {
  std::sort(elements->begin(), elements->end(),
            [this](ElementId a, ElementId b) {
              const uint64_t fa = Frequency(a);
              const uint64_t fb = Frequency(b);
              if (fa != fb) return fa < fb;
              return a < b;
            });
}

void TemporalInvertedFile::Query(const irhint::Query& query,
                                 std::vector<ObjectId>* out) const {
  out->clear();
  if (query.elements.empty()) return;

  // Algorithm 1, lines 2-3: consider elements by increasing frequency.
  std::vector<ElementId> elements = query.elements;
  SortByFrequency(&elements);

  const FlatArray<Posting>* first = List(elements[0]);
  if (first == nullptr) return;

  QueryCounters local;
  local.divisions_visited = 1;
  local.postings_scanned = first->size();

  // Lines 4-6: temporal filter over the least frequent element's list.
  std::vector<ObjectId> candidates;
  for (const Posting& p : *first) {
    if (p.id != kTombstoneId && PostingOverlaps(p, query.interval)) {
      candidates.push_back(p.id);
    }
  }
  local.candidates_verified = candidates.size();

  // Lines 7-8: merge-intersect with the remaining lists.
  std::vector<ObjectId> next;
  for (size_t i = 1; i < elements.size() && !candidates.empty(); ++i) {
    const FlatArray<Posting>* list = List(elements[i]);
    if (list == nullptr) {
      candidates.clear();
      break;
    }
    ++local.divisions_visited;
    ++local.intersections_performed;
    local.postings_scanned += list->size();
    next.clear();
    IntersectMerge(candidates, list->span(), &next);
    candidates.swap(next);
  }
  out->swap(candidates);
  counters_.Accumulate(local);
}

size_t TemporalInvertedFile::MemoryUsageBytes() const {
  size_t bytes = element_slot_.MemoryUsageBytes();
  bytes += lists_.capacity() * sizeof(FlatArray<Posting>);
  bytes += live_counts_.capacity() * sizeof(uint64_t);
  for (const FlatArray<Posting>& list : lists_) {
    bytes += list.MemoryUsageBytes();
  }
  return bytes;
}

void TemporalInvertedFile::SaveState(SnapshotWriter* writer) const {
  writer->WriteU64(domain_end_);
  // Invert the slot map into a per-slot element array: deterministic bytes
  // and a direct rebuild of element_slot_ on load.
  std::vector<ElementId> slot_elements(lists_.size(), 0);
  element_slot_.ForEach([&slot_elements](const ElementId& e,
                                         const uint32_t& slot) {
    slot_elements[slot] = e;
  });
  writer->WriteVector(slot_elements);
  writer->WriteVector(live_counts_);
  for (const FlatArray<Posting>& list : lists_) {
    writer->WriteFlatArray(list);
  }
}

Status TemporalInvertedFile::LoadState(SectionCursor* cursor) {
  IRHINT_RETURN_NOT_OK(cursor->ReadU64(&domain_end_));
  std::vector<ElementId> slot_elements;
  IRHINT_RETURN_NOT_OK(cursor->ReadVector(&slot_elements));
  IRHINT_RETURN_NOT_OK(cursor->ReadVector(&live_counts_));
  if (live_counts_.size() != slot_elements.size()) {
    return Status::Corruption("tIF snapshot directory shape mismatch");
  }
  element_slot_.clear();
  element_slot_.reserve(slot_elements.size());
  lists_.assign(slot_elements.size(), {});
  for (uint32_t slot = 0; slot < slot_elements.size(); ++slot) {
    element_slot_.insert_or_assign(slot_elements[slot], slot);
    IRHINT_RETURN_NOT_OK(cursor->ReadFlatArray(&lists_[slot]));
  }
  return Status::OK();
}

Status TemporalInvertedFile::IntegrityCheck(CheckLevel level) const {
  if (lists_.size() != live_counts_.size() ||
      lists_.size() != element_slot_.size()) {
    return Status::Corruption("tIF directory shape mismatch");
  }
  Status status = Status::OK();
  std::vector<bool> slot_seen(lists_.size(), false);
  element_slot_.ForEach([&](const ElementId&, const uint32_t& slot) {
    if (!status.ok()) return;
    if (slot >= lists_.size() || slot_seen[slot]) {
      status = Status::Corruption("tIF element slot map broken");
      return;
    }
    slot_seen[slot] = true;
  });
  IRHINT_RETURN_NOT_OK(status);
  if (level == CheckLevel::kQuick) return Status::OK();

  for (size_t slot = 0; slot < lists_.size(); ++slot) {
    const FlatArray<Posting>& list = lists_[slot];
    uint64_t live = 0;
    ObjectId prev_live = 0;
    bool have_live = false;
    for (size_t i = 0; i < list.size(); ++i) {
      const Posting& p = list[i];
      if (p.id != kTombstoneId) {
        // Tombstones keep their slot; the live subsequence must stay
        // strictly id-increasing (merge-intersection soundness).
        if (have_live && p.id <= prev_live) {
          return Status::Corruption("tIF postings list not id-sorted");
        }
        prev_live = p.id;
        have_live = true;
        ++live;
      }
      if (p.st > p.end) {
        return Status::Corruption("tIF posting has inverted interval");
      }
      if (p.end > domain_end_) {
        return Status::Corruption("tIF posting exceeds declared domain");
      }
    }
    if (live != live_counts_[slot]) {
      return Status::Corruption("tIF live count mismatch");
    }
  }
  return Status::OK();
}

Status TemporalInvertedFile::SaveTo(SnapshotWriter* writer) const {
  writer->BeginSection(kSectionPayload);
  SaveState(writer);
  return writer->EndSection();
}

Status TemporalInvertedFile::LoadFrom(SnapshotReader* reader) {
  auto cursor = reader->OpenSection(kSectionPayload);
  IRHINT_RETURN_NOT_OK(cursor.status());
  return LoadState(&cursor.value());
}

}  // namespace irhint

#include "ir/division_index.h"

#include <algorithm>

namespace irhint {

namespace {

// Checks the temporal conditions required by `mode` (Algorithm 5's
// per-division variants of Algorithm 1, line 5).
inline bool PassesMode(const Posting& p, const Interval& q, CheckMode mode) {
  switch (mode) {
    case CheckMode::kBoth:
      return p.st <= q.end && q.st <= p.end;
    case CheckMode::kStartOnly:
      return q.st <= p.end;
    case CheckMode::kEndOnly:
      return p.st <= q.end;
    case CheckMode::kNone:
      return true;
  }
  return true;
}

}  // namespace

void DivisionTif::Add(ObjectId id, const Interval& interval,
                      const std::vector<ElementId>& elements) {
  const Posting posting{id, static_cast<StoredTime>(interval.st),
                        static_cast<StoredTime>(interval.end)};
  postings_.Add(posting, elements);
}

void DivisionTif::Query(const std::vector<ElementId>& elements,
                        const Interval& q, CheckMode mode,
                        DivisionQueryScratch* scratch,
                        std::vector<ObjectId>* out) const {
  // Temporal filter over the least (globally) frequent element's list.
  std::vector<ObjectId>& candidates = scratch->candidates;
  candidates.clear();
  postings_.ScanList(elements[0], [&](const Posting& p) {
    if (PassesMode(p, q, mode)) candidates.push_back(p.id);
    return true;
  });
  if (scratch->count) {
    ++scratch->counters.divisions_visited;
    scratch->counters.postings_scanned += postings_.ListLength(elements[0]);
    scratch->counters.candidates_verified += candidates.size();
  }
  if (candidates.empty()) return;

  // Intersect with the remaining lists of this division: linear merge for
  // comparably sized inputs, binary probing when the list dwarfs the
  // candidate set (Algorithm 1 in merge fashion vs Algorithm 3's binary
  // search, chosen adaptively).
  std::vector<ObjectId>& next = scratch->next;
  for (size_t i = 1; i < elements.size(); ++i) {
    if (!postings_.HasElement(elements[i])) return;
    next.clear();
    const bool probe = postings_.CanProbe() &&
                       postings_.ListLength(elements[i]) >
                           16 * candidates.size();
    if (scratch->count) {
      ++scratch->counters.intersections_performed;
      scratch->counters.postings_scanned +=
          probe ? candidates.size() : postings_.ListLength(elements[i]);
    }
    if (probe) {
      for (ObjectId id : candidates) {
        if (postings_.Probe(elements[i], id) != nullptr) next.push_back(id);
      }
    } else {
      size_t c = 0;
      postings_.ScanList(elements[i], [&](const Posting& p) {
        while (c < candidates.size() && candidates[c] < p.id) ++c;
        if (c == candidates.size()) return false;
        if (candidates[c] == p.id) {
          next.push_back(p.id);
          ++c;
        }
        return true;
      });
    }
    candidates.swap(next);
    if (candidates.empty()) return;
  }
  out->insert(out->end(), candidates.begin(), candidates.end());
}

void DivisionIdIndex::Intersect(const std::vector<ObjectId>& sorted_candidates,
                                const std::vector<ElementId>& elements,
                                DivisionQueryScratch* scratch,
                                std::vector<ObjectId>* out) const {
  std::vector<ObjectId>& candidates = scratch->candidates;
  candidates.assign(sorted_candidates.begin(), sorted_candidates.end());
  if (scratch->count) {
    ++scratch->counters.divisions_visited;
    scratch->counters.candidates_verified += candidates.size();
  }
  std::vector<ObjectId>& next = scratch->next;
  for (ElementId e : elements) {
    if (candidates.empty()) return;
    if (!postings_.HasElement(e)) return;
    next.clear();
    const bool probe = postings_.CanProbe() &&
                       postings_.ListLength(e) > 16 * candidates.size();
    if (scratch->count) {
      ++scratch->counters.intersections_performed;
      scratch->counters.postings_scanned +=
          probe ? candidates.size() : postings_.ListLength(e);
    }
    if (probe) {
      for (ObjectId id : candidates) {
        if (postings_.Probe(e, id) != nullptr) next.push_back(id);
      }
    } else {
      size_t c = 0;
      postings_.ScanList(e, [&](const IdEntry& entry) {
        while (c < candidates.size() && candidates[c] < entry.id) ++c;
        if (c == candidates.size()) return false;
        if (candidates[c] == entry.id) {
          next.push_back(entry.id);
          ++c;
        }
        return true;
      });
    }
    candidates.swap(next);
  }
  out->insert(out->end(), candidates.begin(), candidates.end());
}

void DivisionIdIndex::IntersectLists(const std::vector<ElementId>& elements,
                                     DivisionQueryScratch* scratch,
                                     std::vector<ObjectId>* out) const {
  std::vector<ObjectId>& candidates = scratch->candidates;
  candidates.clear();
  postings_.ScanList(elements[0], [&](const IdEntry& entry) {
    candidates.push_back(entry.id);
    return true;
  });
  if (scratch->count) {
    ++scratch->counters.divisions_visited;
    scratch->counters.postings_scanned += postings_.ListLength(elements[0]);
  }
  std::vector<ObjectId>& next = scratch->next;
  for (size_t i = 1; i < elements.size(); ++i) {
    if (candidates.empty()) return;
    if (!postings_.HasElement(elements[i])) return;
    next.clear();
    const bool probe = postings_.CanProbe() &&
                       postings_.ListLength(elements[i]) >
                           16 * candidates.size();
    if (scratch->count) {
      ++scratch->counters.intersections_performed;
      scratch->counters.postings_scanned +=
          probe ? candidates.size() : postings_.ListLength(elements[i]);
    }
    if (probe) {
      for (ObjectId id : candidates) {
        if (postings_.Probe(elements[i], id) != nullptr) next.push_back(id);
      }
    } else {
      size_t c = 0;
      postings_.ScanList(elements[i], [&](const IdEntry& entry) {
        while (c < candidates.size() && candidates[c] < entry.id) ++c;
        if (c == candidates.size()) return false;
        if (candidates[c] == entry.id) {
          next.push_back(entry.id);
          ++c;
        }
        return true;
      });
    }
    candidates.swap(next);
  }
  out->insert(out->end(), candidates.begin(), candidates.end());
}

}  // namespace irhint

// Sorted-list intersection kernels.
//
// All inputs are sorted by object id; tombstoned entries (id ==
// kTombstoneId) are skipped in place — tombstoning overwrites the id but
// never moves entries, so the live subsequence of a list stays sorted.
// Caveat: the search-based kernels (IntersectBinary, IntersectGalloping,
// SortedContains) binary-search the probed side, which is only sound while
// that side is tombstone-free; use the merge kernel otherwise.
//
// Three kernels are provided (merge, binary-search probing, galloping);
// the ablation bench contrasts them, and the indexes pick per the paper:
// merge for similarly sized lists, binary search when one side is tiny.

#ifndef IRHINT_IR_INTERSECT_H_
#define IRHINT_IR_INTERSECT_H_

#include <span>
#include <vector>

#include "data/object.h"
#include "ir/postings.h"

namespace irhint {

/// \brief out = a ∩ b via linear merge. O(|a| + |b|).
void IntersectMerge(const std::vector<ObjectId>& a,
                    const std::vector<ObjectId>& b,
                    std::vector<ObjectId>* out);

/// \brief out = candidates ∩ list (by posting id) via linear merge. Takes a
/// span so both owned lists and mmap-backed FlatArray views bind directly.
void IntersectMerge(const std::vector<ObjectId>& candidates,
                    std::span<const Posting> list,
                    std::vector<ObjectId>* out);

/// \brief out = candidates ∩ b, probing the (larger) sorted vector b by
/// binary search for every candidate. O(|candidates| * log |b|).
void IntersectBinary(const std::vector<ObjectId>& candidates,
                     const std::vector<ObjectId>& b,
                     std::vector<ObjectId>* out);

/// \brief out = a ∩ b via galloping (exponential) search from the smaller
/// list into the larger. O(|a| * log(|b|/|a|)) when |a| << |b|.
void IntersectGalloping(const std::vector<ObjectId>& a,
                        const std::vector<ObjectId>& b,
                        std::vector<ObjectId>* out);

/// \brief True iff id occurs in the sorted, tombstone-free vector.
bool SortedContains(const std::vector<ObjectId>& sorted, ObjectId id);

}  // namespace irhint

#endif  // IRHINT_IR_INTERSECT_H_

#include "ir/intersect.h"

#include <algorithm>

namespace irhint {

void IntersectMerge(const std::vector<ObjectId>& a,
                    const std::vector<ObjectId>& b,
                    std::vector<ObjectId>* out) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == kTombstoneId) {
      ++i;
      continue;
    }
    if (b[j] == kTombstoneId) {
      ++j;
      continue;
    }
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void IntersectMerge(const std::vector<ObjectId>& candidates,
                    std::span<const Posting> list,
                    std::vector<ObjectId>* out) {
  size_t i = 0, j = 0;
  while (i < candidates.size() && j < list.size()) {
    const ObjectId lid = list[j].id;
    if (lid == kTombstoneId) {
      ++j;
      continue;
    }
    if (candidates[i] < lid) {
      ++i;
    } else if (candidates[i] > lid) {
      ++j;
    } else {
      out->push_back(lid);
      ++i;
      ++j;
    }
  }
}

void IntersectBinary(const std::vector<ObjectId>& candidates,
                     const std::vector<ObjectId>& b,
                     std::vector<ObjectId>* out) {
  for (ObjectId id : candidates) {
    if (id == kTombstoneId) continue;
    if (std::binary_search(b.begin(), b.end(), id)) out->push_back(id);
  }
}

void IntersectGalloping(const std::vector<ObjectId>& a,
                        const std::vector<ObjectId>& b,
                        std::vector<ObjectId>* out) {
  const std::vector<ObjectId>& small = a.size() <= b.size() ? a : b;
  const std::vector<ObjectId>& large = a.size() <= b.size() ? b : a;
  size_t pos = 0;
  for (ObjectId id : small) {
    if (id == kTombstoneId) continue;
    // Gallop: double the step until we pass id, then binary search the gap.
    size_t step = 1;
    size_t hi = pos;
    while (hi < large.size() && large[hi] < id) {
      pos = hi;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi + 1, large.size());
    const auto it = std::lower_bound(large.begin() + pos, large.begin() + hi,
                                     id);
    pos = static_cast<size_t>(it - large.begin());
    if (pos < large.size() && large[pos] == id) {
      out->push_back(id);
      ++pos;
    }
  }
}

bool SortedContains(const std::vector<ObjectId>& sorted, ObjectId id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

}  // namespace irhint

// Time-aware postings: the entry type of the temporal inverted file and of
// every division-level inverted index.

#ifndef IRHINT_IR_POSTINGS_H_
#define IRHINT_IR_POSTINGS_H_

#include <cstdint>
#include <vector>

#include "data/object.h"
#include "hint/hint.h"  // StoredTime

namespace irhint {

/// \brief One <o.id, [o.t_st, o.t_end]> entry of a time-aware postings list.
/// Lists are kept sorted by object id (the classic IR layout enabling
/// merge-style intersections).
struct Posting {
  ObjectId id = 0;
  StoredTime st = 0;
  StoredTime end = 0;
};

using PostingsList = std::vector<Posting>;

/// \brief True iff the posting's interval overlaps q.
inline bool PostingOverlaps(const Posting& p, const Interval& q) {
  return p.st <= q.end && q.st <= p.end;
}

}  // namespace irhint

#endif  // IRHINT_IR_POSTINGS_H_

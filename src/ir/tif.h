// tIF — the base temporal inverted file (Section 2.2, Algorithm 1).
//
// Every element of the global dictionary maps to a time-aware postings list
// of <o.id, [o.t_st, o.t_end]> entries sorted by object id. A time-travel
// IR query scans the list of the least frequent query element applying the
// temporal overlap predicate, then intersects the surviving candidates with
// the remaining lists in merge fashion.
//
// This is both the weakest baseline (no temporal indexing at all) and the
// building block the IR-first competitors extend.

#ifndef IRHINT_IR_TIF_H_
#define IRHINT_IR_TIF_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/contracts.h"
#include "common/flat_hash_map.h"
#include "core/temporal_ir_index.h"
#include "ir/postings.h"
#include "storage/flat_array.h"

namespace irhint {

class SectionCursor;

/// \brief The base temporal inverted file.
class TemporalInvertedFile : public CountingTemporalIrIndex {
 public:
  TemporalInvertedFile() = default;

  Status Build(const Corpus& corpus) override;
  void Query(const irhint::Query& query, std::vector<ObjectId>* out) const override;
  Status Insert(const Object& object) override;
  Status Erase(const Object& object) override;
  size_t MemoryUsageBytes() const override;
  std::string_view Name() const override { return "tIF"; }
  IndexKind Kind() const override { return IndexKind::kTif; }
  Status SaveTo(SnapshotWriter* writer) const override;
  Status LoadFrom(SnapshotReader* reader) override;
  Status IntegrityCheck(CheckLevel level) const override;

  /// \brief Postings list for element e, or nullptr if e is unknown.
  /// Entries are sorted by id; tombstoned entries have id == kTombstoneId.
  const FlatArray<Posting>* List(ElementId e) const;

  /// \brief Number of live postings of element e.
  uint64_t Frequency(ElementId e) const;

  /// \brief Order query elements by ascending live frequency (ties by id).
  void SortByFrequency(std::vector<ElementId>* elements) const;

  size_t NumElements() const { return lists_.size(); }

  /// \brief Serialize into the section currently open on `writer` (used by
  /// the composite indexes that embed a tIF as their IR layer).
  void SaveState(SnapshotWriter* writer) const;

  /// \brief Restore from a section cursor, replacing current contents.
  IRHINT_UNTRUSTED Status LoadState(SectionCursor* cursor);

 private:
  friend struct IntegrityTestPeer;

  uint32_t SlotFor(ElementId e);  // creating if absent

  FlatHashMap<ElementId, uint32_t> element_slot_;
  std::vector<FlatArray<Posting>> lists_;
  std::vector<uint64_t> live_counts_;
  Time domain_end_ = 0;
};

}  // namespace irhint

#endif  // IRHINT_IR_TIF_H_

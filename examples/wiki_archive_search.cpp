// Archive search scenario (Section 1): retrieve all article versions from a
// Wikipedia-like archive that were valid during a period of interest and
// contain a set of keywords.
//
// Builds the WIKIPEDIA-like simulated corpus at a small scale, indexes it
// with both irHINT variants and the strongest IR-first competitor, and
// compares their answers and latencies for the same query workload.
//
//   $ ./build/examples/wiki_archive_search

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/timer.h"
#include "core/factory.h"
#include "data/query_gen.h"
#include "data/real_sim.h"

using namespace irhint;

int main() {
  std::printf("generating WIKIPEDIA-like corpus (scale 0.005)...\n");
  const Corpus corpus = MakeWikipediaLike(/*scale=*/0.005);
  const CorpusStats stats = corpus.Stats();
  std::printf("%s\n", stats.ToString().c_str());

  // "Versions relevant to the US elections between 1980 and 2000": a
  // 3-keyword query over ~10% of the archive's time line.
  WorkloadGenerator generator(corpus, /*seed=*/2024);
  const std::vector<Query> queries =
      generator.ExtentWorkload(/*extent_pct=*/10.0, /*k=*/3, /*count=*/200);
  std::printf("generated %zu archive queries (10%% extent, |q.d| = 3)\n\n",
              queries.size());

  const IndexKind kinds[] = {IndexKind::kIrHintPerf, IndexKind::kIrHintSize,
                             IndexKind::kTifSlicing};
  std::vector<size_t> reference_counts;
  for (const IndexKind kind : kinds) {
    std::unique_ptr<TemporalIrIndex> index = CreateIndex(kind);
    Timer build_timer;
    if (Status st = index->Build(corpus); !st.ok()) {
      std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double build_s = build_timer.Seconds();

    std::vector<ObjectId> results;
    uint64_t total = 0;
    Timer query_timer;
    std::vector<size_t> counts;
    for (const Query& q : queries) {
      index->Query(q, &results);
      total += results.size();
      counts.push_back(results.size());
    }
    const double query_s = query_timer.Seconds();

    // All indexes must agree on every query.
    if (reference_counts.empty()) {
      reference_counts = counts;
    } else if (counts != reference_counts) {
      std::fprintf(stderr, "!! %s disagrees with the reference results\n",
                   std::string(index->Name()).c_str());
      return 1;
    }

    std::printf("%-18s build %6.2fs  size %7.1f MB  %8.0f queries/s  "
                "(%llu results total)\n",
                std::string(index->Name()).c_str(), build_s,
                static_cast<double>(index->MemoryUsageBytes()) / 1048576.0,
                static_cast<double>(queries.size()) / query_s,
                static_cast<unsigned long long>(total));
  }
  std::printf("\nall indexes returned identical result sets\n");
  return 0;
}

// Allen's interval algebra on the HINT substrate: index a quarter of
// hotel-style bookings, then answer qualitative temporal questions —
// "which bookings were entirely DURING the conference week?", "which ones
// ended exactly when it started (MEETS)?", and so on — for all thirteen
// relations. Also demonstrates the time-expanding overflow: late bookings
// are inserted past the originally declared domain.
//
//   $ ./build/examples/allen_relations

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "hint/allen.h"
#include "hint/hint.h"

using namespace irhint;

namespace {
constexpr Time kDay = 24 * 3600;
constexpr Time kQuarter = 90 * kDay;
}  // namespace

int main() {
  // 100K bookings of 1-14 nights over one quarter.
  Rng rng(2026);
  std::vector<IntervalRecord> bookings;
  for (ObjectId id = 0; id < 100000; ++id) {
    // Check-in/check-out at day granularity, so the exact-boundary
    // relations (EQUALS, MEETS, STARTS, ...) actually fire.
    const Time st = rng.Uniform(76) * kDay;
    const Time nights = 1 + rng.Uniform(14);
    bookings.push_back(
        IntervalRecord{id, Interval(st, st + nights * kDay - 1)});
  }

  HintIndex index;
  HintOptions options;
  options.num_bits = 12;
  if (Status st = index.Build(bookings, kQuarter - 1, options); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu bookings (m = %d, %.1f MB)\n", bookings.size(),
              index.m(),
              static_cast<double>(index.MemoryUsageBytes()) / 1048576.0);

  // Late bookings extend past the declared quarter: overflow store.
  for (ObjectId id = 100000; id < 100050; ++id) {
    const Time st = kQuarter - 7 * kDay + rng.Uniform(7 * kDay);
    if (Status s = index.Insert(id, Interval(st, st + 10 * kDay)); !s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("inserted 50 late bookings (%zu in the overflow store)\n\n",
              index.NumOverflow());

  // The "conference week": days 40-46 inclusive.
  const Interval conference(40 * kDay, 47 * kDay - 1);
  std::printf("conference week: [%llu, %llu]\n",
              static_cast<unsigned long long>(conference.st),
              static_cast<unsigned long long>(conference.end));

  const AllenRelation relations[] = {
      AllenRelation::kEquals,       AllenRelation::kStarts,
      AllenRelation::kStartedBy,    AllenRelation::kFinishes,
      AllenRelation::kFinishedBy,   AllenRelation::kMeets,
      AllenRelation::kMetBy,        AllenRelation::kOverlaps,
      AllenRelation::kOverlappedBy, AllenRelation::kContains,
      AllenRelation::kDuring,       AllenRelation::kBefore,
      AllenRelation::kAfter,
  };
  std::vector<ObjectId> results;
  size_t total = 0;
  for (const AllenRelation relation : relations) {
    if (Status s = index.AllenQuery(relation, conference, &results);
        !s.ok()) {
      std::fprintf(stderr, "query failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  %-14s %7zu bookings\n", AllenRelationName(relation),
                results.size());
    total += results.size();
  }
  // The 13 relations partition all intervals: counts must sum to the
  // total number of live bookings.
  std::printf("sum over relations: %zu (expected %zu)\n", total,
              bookings.size() + 50);
  if (total != bookings.size() + 50) {
    std::fprintf(stderr, "!! partition property violated\n");
    return 1;
  }
  std::printf("the thirteen relations exactly partition the collection\n");
  return 0;
}

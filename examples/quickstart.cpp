// Quickstart: build an irHINT index over a tiny hand-made corpus (the
// paper's running example of Figure 1) and run a time-travel IR query.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/irhint_perf.h"
#include "data/corpus.h"

using namespace irhint;

int main() {
  // The running example: 8 objects over dictionary D = {a, b, c}.
  Corpus corpus;
  Dictionary dict;
  const ElementId a = dict.AddTerm("a");
  const ElementId b = dict.AddTerm("b");
  const ElementId c = dict.AddTerm("c");
  corpus.set_dictionary(dict);

  // Intervals roughly follow Figure 1 (domain 0..99).
  corpus.Append(Interval(55, 95), {a, b, c});  // o1
  corpus.Append(Interval(12, 30), {a, c});     // o2
  corpus.Append(Interval(40, 58), {b});        // o3
  corpus.Append(Interval(5, 90), {a, b, c});   // o4
  corpus.Append(Interval(20, 45), {b, c});     // o5
  corpus.Append(Interval(25, 60), {c});        // o6
  corpus.Append(Interval(15, 99), {a, c});     // o7
  corpus.Append(Interval(30, 38), {c});        // o8
  if (Status st = corpus.Finalize(); !st.ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Build the paper's headline index: irHINT, performance variant.
  IrHintOptions options;
  options.num_bits = 3;  // the paper's illustration uses m = 3
  IrHintPerf index(options);
  if (Status st = index.Build(corpus); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Time-travel IR query: interval [18, 42], elements {a, c} — the shaded
  // area of Figure 1. Expected answer: o2, o4, o7 (ids 1, 3, 6).
  Query query(Interval(18, 42), {a, c});
  std::vector<ObjectId> results;
  index.Query(query, &results);

  std::printf("query [%llu, %llu] with {a, c} -> %zu objects:",
              static_cast<unsigned long long>(query.interval.st),
              static_cast<unsigned long long>(query.interval.end),
              results.size());
  for (ObjectId id : results) std::printf(" o%u", id + 1);
  std::printf("\n");
  std::printf("index size: %zu bytes, m = %d\n", index.MemoryUsageBytes(),
              index.m());
  return 0;
}

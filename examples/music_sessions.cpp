// Music IR scenario (Section 1): streaming sessions span a time period and
// their description holds the ids of all streamed tracks; a time-travel IR
// query asks for the sessions in which a set of tracks was streamed during
// a given month.
//
// Demonstrates the textual-dictionary API: tracks are interned by name, and
// queries are phrased with track names.
//
//   $ ./build/examples/music_sessions

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/irhint_size.h"
#include "data/corpus.h"

using namespace irhint;

namespace {

// One synthetic month of listening, one time unit per second.
constexpr Time kMonth = 30 * 24 * 3600;

}  // namespace

int main() {
  // A small catalog of named tracks with Zipf popularity.
  Corpus corpus;
  Dictionary catalog;
  std::vector<ElementId> tracks;
  for (int i = 0; i < 2000; ++i) {
    tracks.push_back(catalog.AddTerm("track-" + std::to_string(i)));
  }
  const ElementId ode_to_joy = catalog.AddTerm("Ode to Joy");
  const ElementId fur_elise = catalog.AddTerm("Fur Elise");
  corpus.set_dictionary(catalog);
  corpus.DeclareDomain(3 * kMonth - 1);  // a quarter of data

  // 50K sessions: 20 minutes to several hours long, 3-30 tracks each;
  // the two Beethoven pieces co-occur in ~2% of sessions.
  Rng rng(99);
  ZipfSampler popularity(tracks.size(), 1.1);
  for (int s = 0; s < 50000; ++s) {
    const Time st = rng.Uniform(3 * kMonth - 7200);
    const Time duration = 1200 + rng.Uniform(7200);
    std::vector<ElementId> played;
    const int n = 3 + static_cast<int>(rng.Uniform(28));
    for (int t = 0; t < n; ++t) {
      played.push_back(tracks[popularity.Sample(rng) - 1]);
    }
    if (rng.NextBool(0.02)) {
      played.push_back(ode_to_joy);
      played.push_back(fur_elise);
    }
    corpus.Append(Interval(st, st + duration - 1), std::move(played));
  }
  if (Status st = corpus.Finalize(); !st.ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Index with the size-variant irHINT (archives favour small indexes).
  IrHintSize index;
  if (Status st = index.Build(corpus); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu sessions (m = %d, %.1f MB)\n", corpus.size(),
              index.m(),
              static_cast<double>(index.MemoryUsageBytes()) / 1048576.0);

  // "Sessions where users listened to Ode to Joy and Fur Elise during the
  // second month."
  const Dictionary& dict = corpus.dictionary();
  Query query(Interval(kMonth, 2 * kMonth - 1),
              {dict.LookupTerm("Ode to Joy"), dict.LookupTerm("Fur Elise")});
  std::vector<ObjectId> sessions;
  index.Query(query, &sessions);
  std::printf("sessions with both pieces in month 2: %zu\n", sessions.size());

  // Verify one hit end-to-end through the public object API.
  if (!sessions.empty()) {
    const Object& o = corpus.object(sessions.front());
    std::printf("example session %u: [%llu, %llu], %zu tracks, contains "
                "both pieces: %s\n",
                o.id, static_cast<unsigned long long>(o.interval.st),
                static_cast<unsigned long long>(o.interval.end),
                o.elements.size(),
                o.ContainsAll({std::min(ode_to_joy, fur_elise),
                               std::max(ode_to_joy, fur_elise)})
                    ? "yes"
                    : "NO (bug!)");
  }
  return 0;
}

// Market-analysis scenario (Section 1): basket data where each customer
// visit spans a time period and its description holds the purchased
// products. Demonstrates the update path: the store keeps indexing new
// visits online and retires old ones, while analysts run time-travel IR
// queries ("all last-month visits that bought The Shining, It and Misery").
//
//   $ ./build/examples/market_baskets

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/irhint_perf.h"
#include "data/corpus.h"

using namespace irhint;

namespace {
constexpr Time kDay = 24 * 3600;
constexpr Time kHorizon = 90 * kDay;  // a quarter of visits
}  // namespace

int main() {
  Corpus corpus;
  Dictionary products;
  std::vector<ElementId> skus;
  for (int i = 0; i < 5000; ++i) {
    skus.push_back(products.AddTerm("sku-" + std::to_string(i)));
  }
  const ElementId shining = products.AddTerm("The Shining");
  const ElementId it_novel = products.AddTerm("It");
  const ElementId misery = products.AddTerm("Misery");
  corpus.set_dictionary(products);
  corpus.DeclareDomain(kHorizon - 1);

  Rng rng(3);
  ZipfSampler popularity(skus.size(), 1.0);
  auto make_visit = [&](Time st) {
    const Time duration = 600 + rng.Uniform(3 * 3600);
    std::vector<ElementId> basket;
    const int n = 1 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < n; ++i) {
      basket.push_back(skus[popularity.Sample(rng) - 1]);
    }
    if (rng.NextBool(0.01)) {
      basket.push_back(shining);
      basket.push_back(it_novel);
      if (rng.NextBool(0.5)) basket.push_back(misery);
    }
    return corpus.Append(Interval(st, st + duration - 1), std::move(basket));
  };

  // First two months arrive as a bulk build.
  while (corpus.size() < 60000) make_visit(rng.Uniform(60 * kDay));
  if (Status st = corpus.Finalize(); !st.ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", st.ToString().c_str());
    return 1;
  }
  IrHintPerf index;
  if (Status st = index.Build(corpus); !st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("bulk-indexed %zu visits (m = %d)\n", corpus.size(), index.m());

  // Month three streams in online.
  std::vector<ObjectId> streamed;
  for (int i = 0; i < 30000; ++i) {
    const ObjectId id = make_visit(60 * kDay + rng.Uniform(30 * kDay));
    streamed.push_back(id);
    if (Status st = index.Insert(corpus.object(id)); !st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("streamed %zu additional visits\n", streamed.size());

  // "All last-month visits with the three King novels."
  Query last_month(Interval(60 * kDay, kHorizon - 1),
                   {shining, it_novel, misery});
  std::vector<ObjectId> hits;
  index.Query(last_month, &hits);
  std::printf("last-month visits buying all three novels: %zu\n",
              hits.size());

  // GDPR request: forget the first half of those visits.
  size_t removed = 0;
  for (size_t i = 0; i < hits.size() / 2; ++i) {
    if (index.Erase(corpus.object(hits[i])).ok()) ++removed;
  }
  std::vector<ObjectId> after;
  index.Query(last_month, &after);
  std::printf("after erasing %zu visits the query returns %zu\n", removed,
              after.size());
  if (after.size() != hits.size() - removed) {
    std::fprintf(stderr, "!! unexpected result count after deletions\n");
    return 1;
  }
  std::printf("deletion bookkeeping is consistent\n");
  return 0;
}
